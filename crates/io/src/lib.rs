//! DDIO-style device I/O agents for the TLA simulator.
//!
//! Emerging I/O devices (NICs, accelerators) DMA their payloads straight
//! into the LLC instead of memory — Intel's Data Direct I/O. That traffic
//! never touches the core caches, but it competes for LLC capacity and,
//! under an inclusive hierarchy, its evictions back-invalidate application
//! lines out of the core caches: the same inclusion-victim problem the TLA
//! paper solves, arriving from a new attacker. Real DDIO bounds the damage
//! by restricting injection fills to a small number of LLC ways.
//!
//! This crate defines the *workload side* of that scenario:
//!
//! * [`IoAgentSpec`] — one device agent, either a NIC ring buffer
//!   ([`IoAgentKind::NicRing`]: a bounded circular region with high
//!   short-term reuse) or a leaky-DMA stream
//!   ([`IoAgentKind::DmaStream`]: write-once lines that are never
//!   re-read), realized as a deterministic [`SyntheticTrace`] over the
//!   existing pattern machinery.
//! * [`IoMixConfig`] — the set of agents plus the hierarchy-level
//!   injection controls (injection-way limit, static app/I-O
//!   way-partitioning) that `tla-core` enforces against its `WayMask`
//!   replacement layer.
//!
//! Agents are scheduled alongside cores in the simulation engine (one
//! injection every [`IoAgentSpec::period`] cycles) and draw their line
//! streams from `tla-rng`-seeded generators, so runs with I/O agents are
//! exactly as deterministic — across engines, probe kernels and job
//! counts — as runs without them.

use tla_workloads::{PatternKind, SyntheticTrace, WorkloadParams};

#[cfg(test)]
use tla_workloads::TraceSource;

/// Address-space instance slot of the first I/O agent.
///
/// Core traces occupy instances `0..64` ([`CoreId::MAX_CORES`] bounds the
/// core count); agents start above that, so device lines never collide
/// with any application's working set.
///
/// [`CoreId::MAX_CORES`]: https://docs.rs/tla-types
pub const IO_INSTANCE_BASE: u64 = 64;

/// The traffic shape of one I/O agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoAgentKind {
    /// NIC receive/transmit ring: a bounded circular buffer the device
    /// wraps over, touching each descriptor line a couple of times in
    /// short order (high short-term reuse, working set = the ring).
    NicRing,
    /// Leaky DMA: an unbounded write-once stream (bulk transfers whose
    /// payload the CPU consumes from memory much later, or never) — pure
    /// LLC pollution with no reuse at all.
    DmaStream,
}

impl IoAgentKind {
    /// Every kind, in declaration order.
    pub const ALL: [IoAgentKind; 2] = [IoAgentKind::NicRing, IoAgentKind::DmaStream];

    /// Stable machine-readable name (CLI spelling and report column).
    pub const fn name(self) -> &'static str {
        match self {
            IoAgentKind::NicRing => "nic",
            IoAgentKind::DmaStream => "dma",
        }
    }

    /// Inverse of [`IoAgentKind::name`].
    pub fn parse(s: &str) -> Option<IoAgentKind> {
        IoAgentKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One device agent: a traffic shape plus its intensity knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoAgentSpec {
    /// The traffic shape.
    pub kind: IoAgentKind,
    /// Cycles between injections (smaller = more intense; clamped to at
    /// least 1 when the trace is built).
    pub period: u64,
    /// Working-set size in lines (the ring size). Ignored by
    /// [`IoAgentKind::DmaStream`], which streams without bound.
    pub lines: u64,
}

impl IoAgentSpec {
    /// A NIC ring agent with default intensity: one injection every 4
    /// cycles over a 512-line (32 KB) ring.
    pub const fn nic() -> IoAgentSpec {
        IoAgentSpec {
            kind: IoAgentKind::NicRing,
            period: 4,
            lines: 512,
        }
    }

    /// A leaky-DMA streaming agent with default intensity: one write-once
    /// line every 4 cycles.
    pub const fn dma() -> IoAgentSpec {
        IoAgentSpec {
            kind: IoAgentKind::DmaStream,
            period: 4,
            lines: 0,
        }
    }

    /// Sets the injection period in cycles.
    #[must_use]
    pub const fn period(mut self, period: u64) -> IoAgentSpec {
        self.period = period;
        self
    }

    /// Sets the working-set size in lines.
    #[must_use]
    pub const fn lines(mut self, lines: u64) -> IoAgentSpec {
        self.lines = lines;
        self
    }

    /// Compact label, e.g. `"nic:4:512"` or `"dma:2"`.
    pub fn label(&self) -> String {
        match self.kind {
            IoAgentKind::NicRing => format!("{}:{}:{}", self.kind.name(), self.period, self.lines),
            IoAgentKind::DmaStream => format!("{}:{}", self.kind.name(), self.period),
        }
    }

    /// Parses `kind[:period[:lines]]` — e.g. `nic`, `dma:2`,
    /// `nic:4:1024`. Omitted fields keep the kind's defaults.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse(s: &str) -> Result<IoAgentSpec, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut spec = match IoAgentKind::parse(kind) {
            Some(IoAgentKind::NicRing) => IoAgentSpec::nic(),
            Some(IoAgentKind::DmaStream) => IoAgentSpec::dma(),
            None => {
                return Err(format!(
                    "unknown I/O agent kind {kind:?} (expected one of: nic, dma)"
                ))
            }
        };
        if let Some(p) = parts.next() {
            let period: u64 = p
                .parse()
                .map_err(|_| format!("bad I/O agent period {p:?} in {s:?}"))?;
            if period == 0 {
                return Err(format!("I/O agent period must be positive in {s:?}"));
            }
            spec = spec.period(period);
        }
        if let Some(l) = parts.next() {
            let lines: u64 = l
                .parse()
                .map_err(|_| format!("bad I/O agent line count {l:?} in {s:?}"))?;
            if lines == 0 {
                return Err(format!("I/O agent line count must be positive in {s:?}"));
            }
            spec = spec.lines(lines);
        }
        if parts.next().is_some() {
            return Err(format!(
                "too many fields in I/O agent spec {s:?} (expected kind[:period[:lines]])"
            ));
        }
        Ok(spec)
    }

    /// The statistical trace parameters of this agent at cache scale
    /// divisor `scale` (working sets shrink with the caches, like the
    /// SPEC-like app traces).
    pub fn params(&self, scale: u64) -> WorkloadParams {
        let pattern = match self.kind {
            // Each ring line is touched twice in short order (the device
            // writes the descriptor, then payload completion re-touches
            // it) before the ring pointer moves on.
            IoAgentKind::NicRing => PatternKind::Loop {
                lines: (self.lines / scale.max(1)).max(1),
                stay: 2,
            },
            IoAgentKind::DmaStream => PatternKind::Stream { stay: 1 },
        };
        WorkloadParams {
            // Minimal code footprint: agents have no instruction side; the
            // engine drops the code line and injects only the data line.
            code_footprint_bytes: 64,
            mem_ratio: 1.0,
            write_ratio: match self.kind {
                IoAgentKind::NicRing => 0.5,
                IoAgentKind::DmaStream => 1.0,
            },
            patterns: vec![(1.0, pattern)],
        }
    }

    /// The deterministic line stream of agent number `index` (0-based
    /// among the run's agents) at the given scale and seed.
    ///
    /// With `mem_ratio == 1.0` every generated instruction carries a data
    /// reference, so the engine can treat one trace step as exactly one
    /// injection.
    pub fn stream(&self, index: usize, scale: u64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(&self.params(scale), IO_INSTANCE_BASE + index as u64, seed)
    }
}

/// The I/O side of one simulation run: which agents inject, and how the
/// LLC constrains them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoMixConfig {
    /// The device agents, scheduled alongside the cores.
    pub agents: Vec<IoAgentSpec>,
    /// DDIO-style injection-way limit: device fills may only allocate
    /// (and therefore only evict) in the first `n` ways of each LLC set.
    /// `None` = unlimited (inject anywhere).
    pub inject_ways: Option<usize>,
    /// Static partitioning: when `true`, *app* fills stay out of the
    /// injection ways too, giving each side a private partition.
    /// Meaningless without an injection-way limit.
    pub partition: bool,
}

impl IoMixConfig {
    /// No agents, no limits — the degenerate config whose runs must be
    /// byte-identical to runs without any I/O configuration at all.
    pub fn none() -> IoMixConfig {
        IoMixConfig::default()
    }

    /// Adds an agent.
    #[must_use]
    pub fn agent(mut self, spec: IoAgentSpec) -> IoMixConfig {
        self.agents.push(spec);
        self
    }

    /// Sets the injection-way limit.
    #[must_use]
    pub fn inject_ways(mut self, ways: usize) -> IoMixConfig {
        self.inject_ways = Some(ways);
        self
    }

    /// Enables static app/I-O way-partitioning.
    #[must_use]
    pub fn partition(mut self, on: bool) -> IoMixConfig {
        self.partition = on;
        self
    }

    /// Whether this config changes nothing about a run: no agents to
    /// schedule and no constraint on app victim selection.
    pub fn is_trivial(&self) -> bool {
        self.agents.is_empty() && (self.inject_ways.is_none() || !self.partition)
    }

    /// Compact label for reports, e.g. `"nic:4:512+dma:4/w2p"`.
    pub fn label(&self) -> String {
        let agents: Vec<String> = self.agents.iter().map(IoAgentSpec::label).collect();
        let mut s = if agents.is_empty() {
            "none".to_string()
        } else {
            agents.join("+")
        };
        if let Some(w) = self.inject_ways {
            s.push_str(&format!("/w{w}"));
            if self.partition {
                s.push('p');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in IoAgentKind::ALL {
            assert_eq!(IoAgentKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(IoAgentKind::parse("ssd"), None);
    }

    #[test]
    fn spec_parse_accepts_defaults_and_overrides() {
        assert_eq!(IoAgentSpec::parse("nic").unwrap(), IoAgentSpec::nic());
        assert_eq!(IoAgentSpec::parse("dma").unwrap(), IoAgentSpec::dma());
        let s = IoAgentSpec::parse("nic:2:1024").unwrap();
        assert_eq!(s.kind, IoAgentKind::NicRing);
        assert_eq!(s.period, 2);
        assert_eq!(s.lines, 1024);
        let s = IoAgentSpec::parse("dma:8").unwrap();
        assert_eq!(s.period, 8);
    }

    #[test]
    fn spec_parse_rejects_bad_input() {
        for bad in ["", "ssd", "nic:x", "nic:0", "nic:4:0", "nic:4:8:9"] {
            let err = IoAgentSpec::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn labels_parse_back() {
        for spec in [
            IoAgentSpec::nic(),
            IoAgentSpec::nic().period(2).lines(64),
            IoAgentSpec::dma().period(16),
        ] {
            assert_eq!(IoAgentSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn nic_ring_stays_in_its_ring_and_reuses() {
        let spec = IoAgentSpec::nic().lines(64);
        let mut t = spec.stream(0, 1, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let m = t.next_instruction().mem.expect("mem_ratio is 1.0");
            seen.insert(m.addr.raw());
        }
        // Bounded circular region: exactly the ring, wrapped many times.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn dma_stream_never_reuses() {
        let spec = IoAgentSpec::dma();
        let mut t = spec.stream(0, 1, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let m = t.next_instruction().mem.expect("mem_ratio is 1.0");
            assert!(m.kind.is_write(), "leaky DMA is write-once");
            assert!(seen.insert(m.addr.raw()), "stream must not revisit lines");
        }
    }

    #[test]
    fn agents_are_disjoint_from_cores_and_each_other() {
        let mut core = tla_workloads::SpecApp::Libquantum.trace(1, 0, 7);
        let mut a0 = IoAgentSpec::dma().stream(0, 1, 7);
        let mut a1 = IoAgentSpec::dma().stream(1, 1, 7);
        for _ in 0..500 {
            let c = core.next_instruction().mem.map(|m| m.addr);
            let x = a0.next_instruction().mem.unwrap().addr;
            let y = a1.next_instruction().mem.unwrap().addr;
            assert_ne!(x, y);
            if let Some(c) = c {
                assert_ne!(c, x);
                assert_ne!(c, y);
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let spec = IoAgentSpec::nic();
        let mut a = spec.stream(0, 2, 42);
        let mut b = spec.stream(0, 2, 42);
        for _ in 0..200 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn mix_config_trivial_and_label() {
        assert!(IoMixConfig::none().is_trivial());
        // A bare way limit without partitioning constrains only device
        // fills, of which there are none: still trivial.
        assert!(IoMixConfig::none().inject_ways(2).is_trivial());
        assert!(!IoMixConfig::none()
            .inject_ways(2)
            .partition(true)
            .is_trivial());
        assert!(!IoMixConfig::none().agent(IoAgentSpec::dma()).is_trivial());
        let cfg = IoMixConfig::none()
            .agent(IoAgentSpec::nic())
            .agent(IoAgentSpec::dma().period(2))
            .inject_ways(2)
            .partition(true);
        assert_eq!(cfg.label(), "nic:4:512+dma:2/w2p");
        assert_eq!(IoMixConfig::none().label(), "none");
    }
}
