//! Command-line driver for the TLA simulator.
//!
//! ```text
//! tla-cli list                                   # apps, mixes, policies
//! tla-cli table1 [options]                       # isolated MPKI table
//! tla-cli run --mix lib,sje --policy qbs [opts]  # one run
//! tla-cli compare --mix lib,sje [opts]           # all policies on one mix
//!
//! options: --scale <1|2|4|8>  --measure <n>  --warmup <n>  --seed <n>
//!          --llc-mb <n>  --no-prefetch  --json <path>  --window <n>
//!          --jobs <n>
//! ```

use std::process::ExitCode;
use tla::sim::{mpki_table, run_policy_reports, MixRun, PolicySpec, RunReport, SimConfig, Table};
use tla::telemetry::json::JsonValue;
use tla::workloads::{table2_mixes, SpecApp};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tla-cli <list|table1|run|compare> [options]\n\
         \n\
         commands:\n\
         \x20 list                    available apps, mixes and policies\n\
         \x20 table1                  isolated L1/L2/LLC MPKI (Table I)\n\
         \x20 run     --mix a,b ...   one simulation run\n\
         \x20 compare --mix a,b ...   every policy on one mix\n\
         \n\
         options:\n\
         \x20 --mix <apps|MIX_nn>     comma-separated app names (see `list`)\n\
         \x20 --policy <name>         baseline, tlh-il1, tlh-dl1, tlh-l1, tlh-l2,\n\
         \x20                         tlh-l1-l2, eci, qbs, qbs-il1, qbs-dl1, qbs-l1,\n\
         \x20                         qbs-l2, non-inclusive, exclusive, vc32\n\
         \x20 --scale <1|2|4|8>       cache down-scaling (default 8)\n\
         \x20 --measure <n>           measured instructions/thread (default 300000)\n\
         \x20 --warmup <n>            warm-up instructions/thread (default 800000)\n\
         \x20 --seed <n>              master seed\n\
         \x20 --llc-mb <n>            LLC capacity in MB at full scale\n\
         \x20 --no-prefetch           disable the stream prefetcher\n\
         \x20 --json <path>           write a machine-readable run report\n\
         \x20 --window <n>            time-series window in instructions\n\
         \x20                         (with --json; default 100000)\n\
         \x20 --jobs <n>              worker threads for batch commands\n\
         \x20                         (default: all cores; results are\n\
         \x20                         bit-identical for any value)"
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct Options {
    mix: Vec<SpecApp>,
    policy: Option<PolicySpec>,
    cfg: SimConfig,
    llc_mb: Option<usize>,
    json: Option<String>,
    window: Option<u64>,
}

fn parse_policy(name: &str) -> Option<PolicySpec> {
    Some(match name {
        "baseline" | "inclusive" => PolicySpec::baseline(),
        "tlh-il1" => PolicySpec::tlh_il1(),
        "tlh-dl1" => PolicySpec::tlh_dl1(),
        "tlh-l1" => PolicySpec::tlh_l1(),
        "tlh-l2" => PolicySpec::tlh_l2(),
        "tlh-l1-l2" => PolicySpec::tlh_l1_l2(),
        "eci" => PolicySpec::eci(),
        "qbs" => PolicySpec::qbs(),
        "qbs-il1" => PolicySpec::qbs_il1(),
        "qbs-dl1" => PolicySpec::qbs_dl1(),
        "qbs-l1" => PolicySpec::qbs_l1(),
        "qbs-l2" => PolicySpec::qbs_l2(),
        "non-inclusive" => PolicySpec::non_inclusive(),
        "exclusive" => PolicySpec::exclusive(),
        "vc32" => PolicySpec::victim_cache_32(),
        _ => return None,
    })
}

fn parse_mix(spec: &str) -> Option<Vec<SpecApp>> {
    if let Some(mix) = table2_mixes().into_iter().find(|m| m.name == spec) {
        return Some(mix.apps);
    }
    spec.split(',')
        .map(|n| SpecApp::from_short_name(n.trim()))
        .collect()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        mix: Vec::new(),
        policy: None,
        cfg: SimConfig::scaled_down()
            .warmup(800_000)
            .instructions(300_000),
        llc_mb: None,
        json: None,
        window: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mix" => {
                let v = value("--mix")?;
                opts.mix = parse_mix(&v).ok_or_else(|| format!("unknown mix '{v}'"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                opts.policy =
                    Some(parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?);
            }
            "--scale" => {
                let v: u64 = value("--scale")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.with_scale(v);
            }
            "--measure" => {
                let v: u64 = value("--measure")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.instructions(v);
            }
            "--warmup" => {
                let v: u64 = value("--warmup")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.warmup(v);
            }
            "--seed" => {
                let v: u64 = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.seed(v);
            }
            "--llc-mb" => {
                let v: usize = value("--llc-mb")?.parse().map_err(|e| format!("{e}"))?;
                opts.llc_mb = Some(v);
            }
            "--no-prefetch" => {
                opts.cfg = opts.cfg.prefetch(false);
            }
            "--json" => {
                opts.json = Some(value("--json")?);
            }
            "--window" => {
                let v: u64 = value("--window")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--window must be positive".into());
                }
                opts.window = Some(v);
            }
            "--jobs" => {
                let v: usize = value("--jobs")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--jobs must be positive".into());
                }
                opts.cfg = opts.cfg.jobs(v);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.window.is_some() && opts.json.is_none() {
        return Err("--window only makes sense with --json".into());
    }
    Ok(opts)
}

/// Time-series window used for `--json` when `--window` is not given.
const DEFAULT_WINDOW: u64 = 100_000;

fn print_run(opts: &Options, spec: &PolicySpec) -> (f64, Option<RunReport>) {
    let mut run = MixRun::new(&opts.cfg, &opts.mix).spec(spec);
    if let Some(mb) = opts.llc_mb {
        run = run.llc_capacity_full_scale(mb * 1024 * 1024);
    }
    let (r, report) = if opts.json.is_some() {
        let window = opts.window.unwrap_or(DEFAULT_WINDOW);
        let (r, report) = run.run_report(Some(window));
        (r, Some(report))
    } else {
        (run.run(), None)
    };
    print_result(&spec.name, &r);
    (r.throughput(), report)
}

fn print_result(name: &str, r: &tla::sim::RunResult) {
    println!("policy: {name}");
    let mut t = Table::new(&[
        "core", "app", "IPC", "L1 MPKI", "L2 MPKI", "LLC MPKI", "victims",
    ]);
    for (i, th) in r.threads.iter().enumerate() {
        let row = vec![
            i.to_string(),
            th.app.short_name().to_string(),
            format!("{:.3}", th.ipc()),
            format!("{:.2}", th.l1_mpki()),
            format!("{:.2}", th.l2_mpki()),
            format!("{:.2}", th.llc_mpki()),
            th.stats.inclusion_victims().to_string(),
        ];
        if let Err(e) = t.try_add_row(row) {
            eprintln!("warning: dropping malformed report row: {e}");
        }
    }
    print!("{t}");
    println!(
        "throughput {:.3}; back-inv {}, ECI msgs {}, QBS queries {}, TLHs {}, snoops {}\n",
        r.throughput(),
        r.global.back_invalidates,
        r.global.eci_invalidates,
        r.global.qbs_queries,
        r.global.tlh_hints,
        r.global.snoop_probes,
    );
}

fn write_json(path: &str, text: &str) -> ExitCode {
    match std::fs::write(path, text) {
        Ok(()) => {
            eprintln!("report written to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("apps (SPEC CPU2006 models):");
    for app in SpecApp::ALL {
        println!(
            "  {:4} {:10} ({})",
            app.short_name(),
            format!("{app:?}"),
            app.category()
        );
    }
    println!("\nmixes (Table II):");
    for m in table2_mixes() {
        println!("  {m}");
    }
    println!("\npolicies: baseline tlh-il1 tlh-dl1 tlh-l1 tlh-l2 tlh-l1-l2 eci qbs");
    println!("          qbs-il1 qbs-dl1 qbs-l1 qbs-l2 non-inclusive exclusive vc32");
    ExitCode::SUCCESS
}

fn cmd_table1(opts: &Options) -> ExitCode {
    let mut t = Table::new(&["app", "category", "L1 MPKI", "L2 MPKI", "LLC MPKI"]);
    for r in mpki_table(&opts.cfg) {
        t.add_row(vec![
            r.app.short_name().to_string(),
            r.app.category().to_string(),
            format!("{:.2}", r.l1_mpki),
            format!("{:.2}", r.l2_mpki),
            format!("{:.2}", r.llc_mpki),
        ]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("run: --mix is required");
        return ExitCode::FAILURE;
    }
    let spec = opts.policy.clone().unwrap_or_else(PolicySpec::baseline);
    let (_, report) = print_run(opts, &spec);
    if let (Some(path), Some(report)) = (&opts.json, report) {
        return write_json(path, &report.to_json_string());
    }
    ExitCode::SUCCESS
}

fn cmd_compare(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("compare: --mix is required");
        return ExitCode::FAILURE;
    }
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    // All policies run in parallel (bit-identical to serial, `--jobs`
    // workers); printing happens afterwards, in spec order.
    let window = opts
        .json
        .as_ref()
        .map(|_| opts.window.unwrap_or(DEFAULT_WINDOW));
    let llc = opts.llc_mb.map(|mb| mb * 1024 * 1024);
    let results = run_policy_reports(&opts.cfg, &opts.mix, &specs, llc, window);
    let mut baseline = None;
    let mut reports = Vec::new();
    for (spec, (r, report)) in specs.iter().zip(results) {
        print_result(&spec.name, &r);
        let tp = r.throughput();
        let base = *baseline.get_or_insert(tp);
        println!("  -> {:+.1}% vs baseline\n", (tp / base - 1.0) * 100.0);
        reports.extend(report);
    }
    if let Some(path) = &opts.json {
        let doc = JsonValue::array(reports.iter().map(RunReport::to_json));
        return write_json(path, &doc.to_pretty());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "table1" => cmd_table1(&opts),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_parse() {
        for name in [
            "baseline",
            "tlh-il1",
            "tlh-dl1",
            "tlh-l1",
            "tlh-l2",
            "tlh-l1-l2",
            "eci",
            "qbs",
            "qbs-il1",
            "qbs-dl1",
            "qbs-l1",
            "qbs-l2",
            "non-inclusive",
            "exclusive",
            "vc32",
        ] {
            assert!(parse_policy(name).is_some(), "{name} must parse");
        }
        assert!(parse_policy("bogus").is_none());
        assert_eq!(parse_policy("inclusive").unwrap().name, "Inclusive");
    }

    #[test]
    fn mixes_parse_by_name_and_by_apps() {
        let m = parse_mix("MIX_10").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        let m = parse_mix("lib, sje").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        assert!(parse_mix("nope,sje").is_none());
    }

    #[test]
    fn options_parse_and_validate() {
        let args: Vec<String> = [
            "--mix",
            "MIX_00",
            "--policy",
            "qbs",
            "--scale",
            "4",
            "--measure",
            "1000",
            "--warmup",
            "2000",
            "--seed",
            "5",
            "--llc-mb",
            "4",
            "--no-prefetch",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.mix.len(), 2);
        assert_eq!(o.policy.as_ref().unwrap().name, "QBS");
        assert_eq!(o.cfg.scale(), 4);
        assert_eq!(o.cfg.instruction_quota(), 1000);
        assert_eq!(o.cfg.warmup_quota(), 2000);
        assert_eq!(o.cfg.seed_value(), 5);
        assert!(!o.cfg.prefetch_enabled());
        assert_eq!(o.llc_mb, Some(4));
    }

    #[test]
    fn bad_options_error() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v).unwrap_err()
        };
        assert!(bad(&["--mix"]).contains("--mix"));
        assert!(bad(&["--policy", "bogus"]).contains("unknown policy"));
        assert!(bad(&["--whatever"]).contains("unknown option"));
        assert!(bad(&["--mix", "xyz"]).contains("unknown mix"));
        assert!(bad(&["--jobs", "0"]).contains("positive"));
        assert!(bad(&["--jobs"]).contains("--jobs"));
    }

    #[test]
    fn jobs_option_parses() {
        let args: Vec<String> = ["--jobs", "4"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.cfg.jobs_override(), Some(4));
        assert_eq!(o.cfg.effective_jobs(), 4);
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.cfg.jobs_override(), None);
    }

    #[test]
    fn json_and_window_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[
            "--mix", "lib,sje", "--json", "out.json", "--window", "50000",
        ])
        .unwrap();
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.window, Some(50_000));
        let o = parse(&["--json", "out.json"]).unwrap();
        assert_eq!(o.window, None);
        let err = parse(&["--window", "50000"]).unwrap_err();
        assert!(err.contains("--json"));
        let err = parse(&["--json", "o", "--window", "0"]).unwrap_err();
        assert!(err.contains("positive"));
    }
}
