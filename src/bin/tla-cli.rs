//! Command-line driver for the TLA simulator.
//!
//! ```text
//! tla-cli list                                   # apps, mixes, policies
//! tla-cli table1 [options]                       # isolated MPKI table
//! tla-cli run --mix lib,sje --policy qbs [opts]  # one run
//! tla-cli compare --mix lib,sje [opts]           # all policies on one mix
//! tla-cli bench [opts]                           # throughput benchmark
//!
//! options: --scale <1|2|4|8>  --measure <n>  --warmup <n>  --seed <n>
//!          --llc-mb <n>  --no-prefetch  --json <path>  --window <n>
//!          --jobs <n>  --baseline <path>  --gate <pct>  --target-ms <n>
//! ```

use std::process::ExitCode;
use tla::bench::time_it;
use tla::sim::{mpki_table, run_policy_reports, MixRun, PolicySpec, RunReport, SimConfig, Table};
use tla::telemetry::json::JsonValue;
use tla::workloads::{table2_mixes, SpecApp};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tla-cli <list|table1|run|compare|bench> [options]\n\
         \n\
         commands:\n\
         \x20 list                    available apps, mixes and policies\n\
         \x20 table1                  isolated L1/L2/LLC MPKI (Table I)\n\
         \x20 run     --mix a,b ...   one simulation run\n\
         \x20 compare --mix a,b ...   every policy on one mix\n\
         \x20 bench                   simulator throughput over a fixed\n\
         \x20                         policy x core-count matrix\n\
         \n\
         options:\n\
         \x20 --mix <apps|MIX_nn>     comma-separated app names (see `list`)\n\
         \x20 --policy <name>         baseline, tlh-il1, tlh-dl1, tlh-l1, tlh-l2,\n\
         \x20                         tlh-l1-l2, eci, qbs, qbs-il1, qbs-dl1, qbs-l1,\n\
         \x20                         qbs-l2, non-inclusive, exclusive, vc32\n\
         \x20 --scale <1|2|4|8>       cache down-scaling (default 8)\n\
         \x20 --measure <n>           measured instructions/thread (default 300000)\n\
         \x20 --warmup <n>            warm-up instructions/thread (default 800000)\n\
         \x20 --seed <n>              master seed\n\
         \x20 --llc-mb <n>            LLC capacity in MB at full scale\n\
         \x20 --no-prefetch           disable the stream prefetcher\n\
         \x20 --json <path>           write a machine-readable run report\n\
         \x20 --window <n>            time-series window in instructions\n\
         \x20                         (with --json; default 100000)\n\
         \x20 --jobs <n>              worker threads for batch commands\n\
         \x20                         (default: all cores; results are\n\
         \x20                         bit-identical for any value)\n\
         \n\
         bench options:\n\
         \x20 --json <path>           write the BENCH_*.json report\n\
         \x20 --baseline <path>       committed BENCH_*.json to gate against\n\
         \x20 --gate <pct>            max %% throughput regression per entry\n\
         \x20                         before failing (default 10)\n\
         \x20 --target-ms <n>         wall-clock budget per matrix entry\n\
         \x20                         (default 800)"
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct Options {
    mix: Vec<SpecApp>,
    policy: Option<PolicySpec>,
    cfg: SimConfig,
    llc_mb: Option<usize>,
    json: Option<String>,
    window: Option<u64>,
    baseline: Option<String>,
    gate_pct: f64,
    target_ms: u64,
}

fn parse_policy(name: &str) -> Option<PolicySpec> {
    Some(match name {
        "baseline" | "inclusive" => PolicySpec::baseline(),
        "tlh-il1" => PolicySpec::tlh_il1(),
        "tlh-dl1" => PolicySpec::tlh_dl1(),
        "tlh-l1" => PolicySpec::tlh_l1(),
        "tlh-l2" => PolicySpec::tlh_l2(),
        "tlh-l1-l2" => PolicySpec::tlh_l1_l2(),
        "eci" => PolicySpec::eci(),
        "qbs" => PolicySpec::qbs(),
        "qbs-il1" => PolicySpec::qbs_il1(),
        "qbs-dl1" => PolicySpec::qbs_dl1(),
        "qbs-l1" => PolicySpec::qbs_l1(),
        "qbs-l2" => PolicySpec::qbs_l2(),
        "non-inclusive" => PolicySpec::non_inclusive(),
        "exclusive" => PolicySpec::exclusive(),
        "vc32" => PolicySpec::victim_cache_32(),
        _ => return None,
    })
}

fn parse_mix(spec: &str) -> Option<Vec<SpecApp>> {
    if let Some(mix) = table2_mixes().into_iter().find(|m| m.name == spec) {
        return Some(mix.apps);
    }
    spec.split(',')
        .map(|n| SpecApp::from_short_name(n.trim()))
        .collect()
}

fn parse_options(args: &[String], base_cfg: SimConfig) -> Result<Options, String> {
    let mut opts = Options {
        mix: Vec::new(),
        policy: None,
        cfg: base_cfg,
        llc_mb: None,
        json: None,
        window: None,
        baseline: None,
        gate_pct: 10.0,
        target_ms: 800,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mix" => {
                let v = value("--mix")?;
                opts.mix = parse_mix(&v).ok_or_else(|| format!("unknown mix '{v}'"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                opts.policy =
                    Some(parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?);
            }
            "--scale" => {
                let v: u64 = value("--scale")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.with_scale(v);
            }
            "--measure" => {
                let v: u64 = value("--measure")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.instructions(v);
            }
            "--warmup" => {
                let v: u64 = value("--warmup")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.warmup(v);
            }
            "--seed" => {
                let v: u64 = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.seed(v);
            }
            "--llc-mb" => {
                let v: usize = value("--llc-mb")?.parse().map_err(|e| format!("{e}"))?;
                opts.llc_mb = Some(v);
            }
            "--no-prefetch" => {
                opts.cfg = opts.cfg.prefetch(false);
            }
            "--json" => {
                opts.json = Some(value("--json")?);
            }
            "--window" => {
                let v: u64 = value("--window")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--window must be positive".into());
                }
                opts.window = Some(v);
            }
            "--jobs" => {
                let v: usize = value("--jobs")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--jobs must be positive".into());
                }
                opts.cfg = opts.cfg.jobs(v);
            }
            "--baseline" => {
                opts.baseline = Some(value("--baseline")?);
            }
            "--gate" => {
                let v: f64 = value("--gate")?.parse().map_err(|e| format!("{e}"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err("--gate must be positive".into());
                }
                opts.gate_pct = v;
            }
            "--target-ms" => {
                let v: u64 = value("--target-ms")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--target-ms must be positive".into());
                }
                opts.target_ms = v;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.window.is_some() && opts.json.is_none() {
        return Err("--window only makes sense with --json".into());
    }
    Ok(opts)
}

/// Time-series window used for `--json` when `--window` is not given.
const DEFAULT_WINDOW: u64 = 100_000;

fn print_run(opts: &Options, spec: &PolicySpec) -> (f64, Option<RunReport>) {
    let mut run = MixRun::new(&opts.cfg, &opts.mix).spec(spec);
    if let Some(mb) = opts.llc_mb {
        run = run.llc_capacity_full_scale(mb * 1024 * 1024);
    }
    let (r, report) = if opts.json.is_some() {
        let window = opts.window.unwrap_or(DEFAULT_WINDOW);
        let (r, report) = run.run_report(Some(window));
        (r, Some(report))
    } else {
        (run.run(), None)
    };
    print_result(&spec.name, &r);
    (r.throughput(), report)
}

fn print_result(name: &str, r: &tla::sim::RunResult) {
    println!("policy: {name}");
    let mut t = Table::new(&[
        "core", "app", "IPC", "L1 MPKI", "L2 MPKI", "LLC MPKI", "victims",
    ]);
    for (i, th) in r.threads.iter().enumerate() {
        let row = vec![
            i.to_string(),
            th.app.short_name().to_string(),
            format!("{:.3}", th.ipc()),
            format!("{:.2}", th.l1_mpki()),
            format!("{:.2}", th.l2_mpki()),
            format!("{:.2}", th.llc_mpki()),
            th.stats.inclusion_victims().to_string(),
        ];
        if let Err(e) = t.try_add_row(row) {
            eprintln!("warning: dropping malformed report row: {e}");
        }
    }
    print!("{t}");
    println!(
        "throughput {:.3}; back-inv {}, ECI msgs {}, QBS queries {}, TLHs {}, snoops {}\n",
        r.throughput(),
        r.global.back_invalidates,
        r.global.eci_invalidates,
        r.global.qbs_queries,
        r.global.tlh_hints,
        r.global.snoop_probes,
    );
}

fn write_json(path: &str, text: &str) -> ExitCode {
    match std::fs::write(path, text) {
        Ok(()) => {
            eprintln!("report written to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("apps (SPEC CPU2006 models):");
    for app in SpecApp::ALL {
        println!(
            "  {:4} {:10} ({})",
            app.short_name(),
            format!("{app:?}"),
            app.category()
        );
    }
    println!("\nmixes (Table II):");
    for m in table2_mixes() {
        println!("  {m}");
    }
    println!("\npolicies: baseline tlh-il1 tlh-dl1 tlh-l1 tlh-l2 tlh-l1-l2 eci qbs");
    println!("          qbs-il1 qbs-dl1 qbs-l1 qbs-l2 non-inclusive exclusive vc32");
    ExitCode::SUCCESS
}

fn cmd_table1(opts: &Options) -> ExitCode {
    let mut t = Table::new(&["app", "category", "L1 MPKI", "L2 MPKI", "LLC MPKI"]);
    for r in mpki_table(&opts.cfg) {
        t.add_row(vec![
            r.app.short_name().to_string(),
            r.app.category().to_string(),
            format!("{:.2}", r.l1_mpki),
            format!("{:.2}", r.l2_mpki),
            format!("{:.2}", r.llc_mpki),
        ]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("run: --mix is required");
        return ExitCode::FAILURE;
    }
    let spec = opts.policy.clone().unwrap_or_else(PolicySpec::baseline);
    let (_, report) = print_run(opts, &spec);
    if let (Some(path), Some(report)) = (&opts.json, report) {
        return write_json(path, &report.to_json_string());
    }
    ExitCode::SUCCESS
}

fn cmd_compare(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("compare: --mix is required");
        return ExitCode::FAILURE;
    }
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    // All policies run in parallel (bit-identical to serial, `--jobs`
    // workers); printing happens afterwards, in spec order.
    let window = opts
        .json
        .as_ref()
        .map(|_| opts.window.unwrap_or(DEFAULT_WINDOW));
    let llc = opts.llc_mb.map(|mb| mb * 1024 * 1024);
    let results = run_policy_reports(&opts.cfg, &opts.mix, &specs, llc, window);
    let mut baseline = None;
    let mut reports = Vec::new();
    for (spec, (r, report)) in specs.iter().zip(results) {
        print_result(&spec.name, &r);
        let tp = r.throughput();
        let base = *baseline.get_or_insert(tp);
        println!("  -> {:+.1}% vs baseline\n", (tp / base - 1.0) * 100.0);
        reports.extend(report);
    }
    if let Some(path) = &opts.json {
        let doc = JsonValue::array(reports.iter().map(RunReport::to_json));
        return write_json(path, &doc.to_pretty());
    }
    ExitCode::SUCCESS
}

/// The fixed bench matrix: the paper's four management policies crossed
/// with 1/2/4-core LLC-miss-heavy mixes (mcf and libquantum are the two
/// highest-LLC-MPKI apps of Table I, so every entry exercises the LLC miss
/// path the scratch-buffer rewrite targets).
fn bench_matrix() -> Vec<(String, Vec<SpecApp>, PolicySpec)> {
    use SpecApp::{Libquantum, Mcf};
    let mixes: [(&str, Vec<SpecApp>); 3] = [
        ("1core", vec![Mcf]),
        ("2core", vec![Mcf, Libquantum]),
        ("4core-llcmiss", vec![Mcf, Mcf, Libquantum, Libquantum]),
    ];
    let policies = [
        ("baseline", PolicySpec::baseline()),
        ("tlh-l1", PolicySpec::tlh_l1()),
        ("eci", PolicySpec::eci()),
        ("qbs", PolicySpec::qbs()),
    ];
    let mut matrix = Vec::new();
    for (mix_name, apps) in &mixes {
        for (pol_name, spec) in &policies {
            matrix.push((format!("{mix_name}/{pol_name}"), apps.clone(), spec.clone()));
        }
    }
    matrix
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// One timed bench-matrix entry. `accesses_per_sec` comes from the fastest
/// measured batch (noise-robust); `accesses_per_sec_mean` from the whole
/// measured window.
struct BenchEntry {
    name: String,
    cores: usize,
    accesses: u64,
    iters: u64,
    wall_s: f64,
    accesses_per_sec: f64,
    accesses_per_sec_mean: f64,
}

impl BenchEntry {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::Str(self.name.clone())),
            ("cores", JsonValue::Int(self.cores as u64)),
            ("accesses", JsonValue::Int(self.accesses)),
            ("iters", JsonValue::Int(self.iters)),
            ("wall_s", JsonValue::Num(self.wall_s)),
            ("accesses_per_sec", JsonValue::Num(self.accesses_per_sec)),
            (
                "accesses_per_sec_mean",
                JsonValue::Num(self.accesses_per_sec_mean),
            ),
        ])
    }
}

/// Compares fresh entries against a committed baseline report, failing on
/// any per-entry throughput regression beyond `gate_pct`.
fn bench_gate(entries: &[BenchEntry], baseline_path: &str, gate_pct: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    let base_entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("baseline {baseline_path}: no 'entries' array"))?;
    let mut failures = Vec::new();
    for e in entries {
        let Some(base) = base_entries
            .iter()
            .find(|b| b.get("name").and_then(JsonValue::as_str) == Some(e.name.as_str()))
            .and_then(|b| b.get("accesses_per_sec"))
            .and_then(JsonValue::as_f64)
        else {
            eprintln!("gate: no baseline entry for {} — skipping", e.name);
            continue;
        };
        let delta_pct = (e.accesses_per_sec / base - 1.0) * 100.0;
        let verdict = if delta_pct < -gate_pct {
            failures.push(format!(
                "{}: {:.0} acc/s vs baseline {:.0} ({:+.1}% < -{gate_pct}%)",
                e.name, e.accesses_per_sec, base, delta_pct
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!("gate {:20} {delta_pct:+7.1}%  {verdict}", e.name);
        if delta_pct > gate_pct {
            eprintln!(
                "gate: {} improved {delta_pct:+.1}% — consider re-blessing the baseline",
                e.name
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "throughput regressed beyond {gate_pct}%:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn cmd_bench(opts: &Options) -> ExitCode {
    let cfg = &opts.cfg;
    eprintln!(
        "bench: measure={} warmup={} seed={} scale=1/{} target={}ms per entry",
        cfg.instruction_quota(),
        cfg.warmup_quota(),
        cfg.seed_value(),
        cfg.scale(),
        opts.target_ms
    );
    let t_total = std::time::Instant::now();
    let mut entries = Vec::new();
    let mut table = Table::new(&["entry", "cores", "accesses", "iters", "Macc/s"]);
    for (name, apps, spec) in bench_matrix() {
        // One untimed run pins the deterministic access count and doubles
        // as warm-up before `time_it` calibrates its batch size.
        let r = MixRun::new(cfg, &apps).spec(&spec).run();
        let accesses: u64 = r
            .threads
            .iter()
            .map(|t| t.stats.l1i_accesses + t.stats.l1d_accesses)
            .sum();
        let m = time_it(&name, opts.target_ms, || {
            let _ = MixRun::new(cfg, &apps).spec(&spec).run();
        });
        let accesses_per_sec = accesses as f64 * 1e9 / m.best_nanos_per_iter();
        let accesses_per_sec_mean = accesses as f64 * 1e9 / m.nanos_per_iter();
        table.add_row(vec![
            name.clone(),
            apps.len().to_string(),
            accesses.to_string(),
            m.iters.to_string(),
            format!("{:.2}", accesses_per_sec / 1e6),
        ]);
        entries.push(BenchEntry {
            name,
            cores: apps.len(),
            accesses,
            iters: m.iters,
            wall_s: m.nanos as f64 / 1e9,
            accesses_per_sec,
            accesses_per_sec_mean,
        });
    }
    print!("{table}");
    let wall_total = t_total.elapsed().as_secs_f64();
    let rss = peak_rss_kb();
    println!(
        "total {wall_total:.1}s, peak RSS {}",
        rss.map_or_else(|| "n/a".into(), |kb| format!("{kb} kB"))
    );

    let mut code = ExitCode::SUCCESS;
    if let Some(path) = &opts.baseline {
        if let Err(e) = bench_gate(&entries, path, opts.gate_pct) {
            eprintln!("error: {e}");
            code = ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.json {
        let doc = JsonValue::object([
            ("schema", JsonValue::Str("tla-bench-report-v1".into())),
            (
                "config",
                JsonValue::object([
                    ("measure", JsonValue::Int(cfg.instruction_quota())),
                    ("warmup", JsonValue::Int(cfg.warmup_quota())),
                    ("seed", JsonValue::Int(cfg.seed_value())),
                    ("scale", JsonValue::Int(cfg.scale())),
                    ("target_ms", JsonValue::Int(opts.target_ms)),
                ]),
            ),
            ("wall_s_total", JsonValue::Num(wall_total)),
            ("peak_rss_kb", rss.map_or(JsonValue::Null, JsonValue::Int)),
            (
                "entries",
                JsonValue::array(entries.iter().map(BenchEntry::to_json)),
            ),
        ]);
        match std::fs::write(path, doc.to_pretty()) {
            Ok(()) => eprintln!("report written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    // `bench` wants long measured runs with no warm-up (throughput, not
    // policy fidelity); the simulation commands keep the paper-flavoured
    // warm-up defaults. Either way the flags can override.
    let base_cfg = if cmd == "bench" {
        SimConfig::scaled_down().warmup(0).instructions(1_000_000)
    } else {
        SimConfig::scaled_down()
            .warmup(800_000)
            .instructions(300_000)
    };
    let opts = match parse_options(rest, base_cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "table1" => cmd_table1(&opts),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "bench" => cmd_bench(&opts),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_options(args: &[String]) -> Result<Options, String> {
        super::parse_options(
            args,
            SimConfig::scaled_down()
                .warmup(800_000)
                .instructions(300_000),
        )
    }

    #[test]
    fn policy_names_parse() {
        for name in [
            "baseline",
            "tlh-il1",
            "tlh-dl1",
            "tlh-l1",
            "tlh-l2",
            "tlh-l1-l2",
            "eci",
            "qbs",
            "qbs-il1",
            "qbs-dl1",
            "qbs-l1",
            "qbs-l2",
            "non-inclusive",
            "exclusive",
            "vc32",
        ] {
            assert!(parse_policy(name).is_some(), "{name} must parse");
        }
        assert!(parse_policy("bogus").is_none());
        assert_eq!(parse_policy("inclusive").unwrap().name, "Inclusive");
    }

    #[test]
    fn mixes_parse_by_name_and_by_apps() {
        let m = parse_mix("MIX_10").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        let m = parse_mix("lib, sje").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        assert!(parse_mix("nope,sje").is_none());
    }

    #[test]
    fn options_parse_and_validate() {
        let args: Vec<String> = [
            "--mix",
            "MIX_00",
            "--policy",
            "qbs",
            "--scale",
            "4",
            "--measure",
            "1000",
            "--warmup",
            "2000",
            "--seed",
            "5",
            "--llc-mb",
            "4",
            "--no-prefetch",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.mix.len(), 2);
        assert_eq!(o.policy.as_ref().unwrap().name, "QBS");
        assert_eq!(o.cfg.scale(), 4);
        assert_eq!(o.cfg.instruction_quota(), 1000);
        assert_eq!(o.cfg.warmup_quota(), 2000);
        assert_eq!(o.cfg.seed_value(), 5);
        assert!(!o.cfg.prefetch_enabled());
        assert_eq!(o.llc_mb, Some(4));
    }

    #[test]
    fn bad_options_error() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v).unwrap_err()
        };
        assert!(bad(&["--mix"]).contains("--mix"));
        assert!(bad(&["--policy", "bogus"]).contains("unknown policy"));
        assert!(bad(&["--whatever"]).contains("unknown option"));
        assert!(bad(&["--mix", "xyz"]).contains("unknown mix"));
        assert!(bad(&["--jobs", "0"]).contains("positive"));
        assert!(bad(&["--jobs"]).contains("--jobs"));
    }

    #[test]
    fn jobs_option_parses() {
        let args: Vec<String> = ["--jobs", "4"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.cfg.jobs_override(), Some(4));
        assert_eq!(o.cfg.effective_jobs(), 4);
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.cfg.jobs_override(), None);
    }

    #[test]
    fn json_and_window_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[
            "--mix", "lib,sje", "--json", "out.json", "--window", "50000",
        ])
        .unwrap();
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.window, Some(50_000));
        let o = parse(&["--json", "out.json"]).unwrap();
        assert_eq!(o.window, None);
        let err = parse(&["--window", "50000"]).unwrap_err();
        assert!(err.contains("--json"));
        let err = parse(&["--json", "o", "--window", "0"]).unwrap_err();
        assert!(err.contains("positive"));
    }

    #[test]
    fn bench_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[
            "--baseline",
            "BENCH_pr3.json",
            "--gate",
            "5",
            "--target-ms",
            "100",
        ])
        .unwrap();
        assert_eq!(o.baseline.as_deref(), Some("BENCH_pr3.json"));
        assert_eq!(o.gate_pct, 5.0);
        assert_eq!(o.target_ms, 100);
        let o = parse(&[]).unwrap();
        assert_eq!(o.baseline, None);
        assert_eq!(o.gate_pct, 10.0);
        assert_eq!(o.target_ms, 800);
        assert!(parse(&["--gate", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--gate", "nan"]).unwrap_err().contains("positive"));
        assert!(parse(&["--target-ms", "0"])
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn bench_matrix_shape() {
        let matrix = bench_matrix();
        assert_eq!(matrix.len(), 12, "4 policies x 3 core counts");
        // Names are unique (the gate matches entries by name).
        let mut names: Vec<&str> = matrix.iter().map(|(n, _, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        // The headline LLC-miss-heavy workload is present at 4 cores.
        assert!(matrix
            .iter()
            .any(|(n, apps, _)| n == "4core-llcmiss/baseline" && apps.len() == 4));
    }

    #[test]
    fn bench_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join(format!("tla-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        let baseline = JsonValue::object([(
            "entries",
            JsonValue::array([JsonValue::object([
                ("name", JsonValue::Str("1core/baseline".into())),
                ("accesses_per_sec", JsonValue::Num(1_000_000.0)),
            ])]),
        )]);
        std::fs::write(&path, baseline.to_pretty()).unwrap();
        let entry = |aps: f64| BenchEntry {
            name: "1core/baseline".into(),
            cores: 1,
            accesses: 1,
            iters: 1,
            wall_s: 1.0,
            accesses_per_sec: aps,
            accesses_per_sec_mean: aps,
        };
        let p = path.to_str().unwrap();
        // Within the gate: equal, slightly slower, much faster.
        assert!(bench_gate(&[entry(1_000_000.0)], p, 10.0).is_ok());
        assert!(bench_gate(&[entry(950_000.0)], p, 10.0).is_ok());
        assert!(bench_gate(&[entry(2_000_000.0)], p, 10.0).is_ok());
        // Beyond the gate: fails with the entry named.
        let err = bench_gate(&[entry(800_000.0)], p, 10.0).unwrap_err();
        assert!(err.contains("1core/baseline"));
        // Unknown entries are skipped, not failed.
        let mut stray = entry(1.0);
        stray.name = "no-such-entry".into();
        assert!(bench_gate(&[stray], p, 10.0).is_ok());
        // Malformed baseline reports an error.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{}").unwrap();
        assert!(bench_gate(&[entry(1.0)], bad.to_str().unwrap(), 10.0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
