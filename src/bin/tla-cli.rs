//! Command-line driver for the TLA simulator.
//!
//! ```text
//! tla-cli list                                   # apps, mixes, policies
//! tla-cli table1 [options]                       # isolated MPKI table
//! tla-cli run --mix lib,sje --policy qbs [opts]  # one run
//! tla-cli compare --mix lib,sje [opts]           # all policies on one mix
//! tla-cli analyze --mix lib,sje [opts]           # compare + MIN oracle,
//!                                                # reuse and victim analytics
//! tla-cli bench [opts]                           # throughput benchmark
//! tla-cli io-sweep --mix sje [opts]              # app-vs-I/O pressure sweep
//! tla-cli snapshot save --mix a,b --out f.tlas   # warm once, checkpoint
//! tla-cli snapshot info f.tlas                   # inspect a checkpoint
//! tla-cli snapshot resume f.tlas --policy qbs    # measure from a checkpoint
//!
//! options: --scale <1|2|4|8>  --measure <n>  --warmup <n>  --seed <n>
//!          --llc-mb <n>  --no-prefetch  --json <path>  --window <n>
//!          --jobs <n>  --shard-jobs <n>  --engine-jobs <n>
//!          --baseline <path>  --gate <pct>  --target-ms <n>  --out <path>
//!          --warm-start  --warm-image <path>  --sample-every <n>
//!          --io <agents>  --io-ways <n>  --io-partition  --smoke
//! ```

use std::process::ExitCode;
use tla::io::{IoAgentSpec, IoMixConfig};
use tla::kv::{report_json, run_load, KvConfig, KvPolicy, LoadSpec, ShardedKv};
use tla::sim::{
    mpki_table, optimal_llc, run_policy_reports_analyzed_io, run_policy_reports_io,
    run_policy_reports_warm_start_cached, Checkpoint, EngineMode, MixRun, PolicySpec, RunReport,
    RunResult, SimConfig, Table, WarmCache,
};
use tla::telemetry::json::JsonValue;
use tla::telemetry::DEFAULT_SAMPLE_EVERY;
use tla::workloads::{table2_mixes, KvWorkload, SpecApp};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tla-cli <list|table1|run|compare|analyze|bench|io-sweep|kv-bench|snapshot> [options]\n\
         \n\
         commands:\n\
         \x20 list                    available apps, mixes and policies\n\
         \x20 table1                  isolated L1/L2/LLC MPKI (Table I)\n\
         \x20 run     --mix a,b ...   one simulation run\n\
         \x20 compare --mix a,b ...   every policy on one mix\n\
         \x20                         (--warm-start: warm once under the\n\
         \x20                         baseline, fan measurement per policy)\n\
         \x20 analyze --mix a,b ...   compare with the analytics layer:\n\
         \x20                         Belady MIN oracle gap, reuse-distance\n\
         \x20                         histograms, inclusion-victim rates\n\
         \x20 bench                   simulator throughput over a fixed\n\
         \x20                         policy x core-count matrix (plus the\n\
         \x20                         kv/* service and io/* injection entries)\n\
         \x20 io-sweep [--mix a,b]    app-vs-I/O pressure sweep: device\n\
         \x20                         scenarios (nic ring, leaky dma,\n\
         \x20                         injection-way limits, partitioning)\n\
         \x20                         x the four management policies\n\
         \x20                         (default mix: sje; --smoke for CI)\n\
         \x20 kv-bench                multi-threaded load against the\n\
         \x20                         tla-kv sharded cache service\n\
         \x20 snapshot save --mix a,b --out <f.tlas>\n\
         \x20                         run the warm-up only and checkpoint it\n\
         \x20                         (--window instruments the checkpoint)\n\
         \x20 snapshot info <f.tlas>  describe a checkpoint\n\
         \x20 snapshot resume <f.tlas> [--policy p] [--json out]\n\
         \x20                         finish the measured phase from a\n\
         \x20                         checkpoint (config comes from the file)\n\
         \x20 snapshot cache-info <dir>\n\
         \x20                         list a --warm-cache directory (reads\n\
         \x20                         only; nothing is evicted or touched)\n\
         \n\
         options:\n\
         \x20 --mix <apps|MIX_nn>     comma-separated app names (see `list`)\n\
         \x20 --policy <name>         baseline, tlh-il1, tlh-dl1, tlh-l1, tlh-l2,\n\
         \x20                         tlh-l1-l2, eci, qbs, qbs-il1, qbs-dl1, qbs-l1,\n\
         \x20                         qbs-l2, non-inclusive, exclusive, vc<N>\n\
         \x20                         (vc32 = the paper's victim cache; any\n\
         \x20                         entry count up to 256 works, e.g. vc128)\n\
         \x20 --scale <1|2|4|8>       cache down-scaling (default 8)\n\
         \x20 --measure <n>           measured instructions/thread (default 300000)\n\
         \x20 --warmup <n>            warm-up instructions/thread (default 800000)\n\
         \x20 --seed <n>              master seed\n\
         \x20 --llc-mb <n>            LLC capacity in MB at full scale\n\
         \x20 --no-prefetch           disable the stream prefetcher\n\
         \x20 --json <path>           write a machine-readable run report\n\
         \x20 --window <n>            time-series window in instructions\n\
         \x20                         (with --json; default 100000)\n\
         \x20 --jobs <n>              worker threads for batch commands\n\
         \x20                         (default: all cores; results are\n\
         \x20                         bit-identical for any value)\n\
         \x20 --shard-jobs <n>        worker threads for set-sharded passes\n\
         \x20                         inside one run (the Belady oracle;\n\
         \x20                         default 1, 0 = all cores; results are\n\
         \x20                         bit-identical for any value)\n\
         \x20 --engine-jobs <n>       worker threads for the parallel\n\
         \x20                         timing engine's epoch pre-generation\n\
         \x20                         (TLA_ENGINE=parallel; 0 = all cores,\n\
         \x20                         the default; results are bit-identical\n\
         \x20                         for any value and any engine)\n\
         \x20 --out <path>            checkpoint file for snapshot save\n\
         \x20 --warm-start            share one warm-up across compare's\n\
         \x20                         policies via an in-memory checkpoint\n\
         \x20 --warm-cache <dir>      persist compare's warm images to <dir>\n\
         \x20                         keyed by configuration; later runs with\n\
         \x20                         the same config skip the warm-up\n\
         \x20                         entirely (implies --warm-start)\n\
         \x20 --sample-every <n>      analyze: profile reuse distance in\n\
         \x20                         every n-th LLC set (default 4)\n\
         \x20 --io <a[,a...]>         run/compare/analyze: attach device\n\
         \x20                         I/O agents injecting into the LLC\n\
         \x20                         (DDIO-style). Agents: nic[:period\n\
         \x20                         [:lines]] (ring buffer), dma[:period]\n\
         \x20                         (leaky write-once stream); e.g.\n\
         \x20                         --io dma:2,nic:4:512. Incompatible\n\
         \x20                         with --warm-start/--warm-cache and\n\
         \x20                         snapshots (checkpoints do not cover\n\
         \x20                         device agents)\n\
         \x20 --io-ways <n>           limit device injections to the first\n\
         \x20                         n LLC ways (DDIO's inject-into-N-ways\n\
         \x20                         model; must fit the LLC associativity)\n\
         \x20 --io-partition          also keep app fills out of the device\n\
         \x20                         ways (static way partitioning;\n\
         \x20                         requires --io-ways)\n\
         \x20 --smoke                 io-sweep: small fixed sweep (CI mode)\n\
         \n\
         bench options:\n\
         \x20 --json <path>           write the BENCH_*.json report\n\
         \x20 --baseline <path>       committed BENCH_*.json to gate against\n\
         \x20 --gate <pct>            max %% regression of an entry's\n\
         \x20                         throughput ratio to 1core/baseline\n\
         \x20                         before failing (default 10)\n\
         \x20 --target-ms <n>         wall-clock budget per matrix entry\n\
         \x20                         (default 800)\n\
         \x20 --warm-image <f.tlas>   warm matching sim entries from a\n\
         \x20                         frozen committed checkpoint (made\n\
         \x20                         with `snapshot save`) instead of a\n\
         \x20                         cold run, so regressions stay\n\
         \x20                         bisectable across binary revisions\n\
         \x20                         with identical warm state; entries\n\
         \x20                         whose config does not match the\n\
         \x20                         image fall back to cold runs\n\
         \n\
         kv-bench options:\n\
         \x20 --policy <p|all>        lru, fifo, clock, s3fifo or all\n\
         \x20                         (default clock)\n\
         \x20 --workload <w>          zipf, zipf:<s>, uniform, scan, mix,\n\
         \x20                         mix:<period>:<burst> (default zipf)\n\
         \x20 --threads <n>           load-generator threads (default 8)\n\
         \x20 --keys <n>              keyspace size (default 65536)\n\
         \x20 --ops <n>               operations per thread (default 200000)\n\
         \x20 --capacity <n>          cache capacity in entries (default 16384)\n\
         \x20 --shards <n>            lock stripes, power of two (default 8)\n\
         \x20 --ways <n>              associativity (default 8)\n\
         \x20 --put-permille <n>      puts per 1000 ops (default 50)\n\
         \x20 --seed <n>              load/cache seed (default 1)\n\
         \x20 --json <path>           write the tla-kv-report-v1 JSON,\n\
         \x20                         including per-shard windowed\n\
         \x20                         hit-rate time series\n\
         \x20 --window <n>            ops per shard between series\n\
         \x20                         windows (with --json; default 8192)\n\
         \x20 --smoke                 quick fixed sweep over every policy\n\
         \x20                         with counter self-checks (CI mode)"
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct Options {
    mix: Vec<SpecApp>,
    policy: Option<PolicySpec>,
    cfg: SimConfig,
    llc_mb: Option<usize>,
    json: Option<String>,
    window: Option<u64>,
    baseline: Option<String>,
    gate_pct: f64,
    target_ms: u64,
    out: Option<String>,
    warm_start: bool,
    warm_cache: Option<String>,
    warm_image: Option<String>,
    sample_every: u32,
    io: IoMixConfig,
    smoke: bool,
}

fn parse_policy(name: &str) -> Option<PolicySpec> {
    // `vc<N>` is a family, not a fixed name: vc32 is the paper's §VI victim
    // cache, larger sizes (up to the 256-way structure limit) drive the
    // fully-associative probe sweeps.
    if let Some(n) = name.strip_prefix("vc") {
        let entries: usize = n.parse().ok()?;
        if !(1..=tla::cache::MAX_WAYS).contains(&entries) {
            return None;
        }
        return Some(PolicySpec::victim_cache(entries));
    }
    Some(match name {
        "baseline" | "inclusive" => PolicySpec::baseline(),
        "tlh-il1" => PolicySpec::tlh_il1(),
        "tlh-dl1" => PolicySpec::tlh_dl1(),
        "tlh-l1" => PolicySpec::tlh_l1(),
        "tlh-l2" => PolicySpec::tlh_l2(),
        "tlh-l1-l2" => PolicySpec::tlh_l1_l2(),
        "eci" => PolicySpec::eci(),
        "qbs" => PolicySpec::qbs(),
        "qbs-il1" => PolicySpec::qbs_il1(),
        "qbs-dl1" => PolicySpec::qbs_dl1(),
        "qbs-l1" => PolicySpec::qbs_l1(),
        "qbs-l2" => PolicySpec::qbs_l2(),
        "non-inclusive" => PolicySpec::non_inclusive(),
        "exclusive" => PolicySpec::exclusive(),
        _ => return None,
    })
}

fn parse_mix(spec: &str) -> Option<Vec<SpecApp>> {
    if let Some(mix) = table2_mixes().into_iter().find(|m| m.name == spec) {
        return Some(mix.apps);
    }
    spec.split(',')
        .map(|n| SpecApp::from_short_name(n.trim()))
        .collect()
}

fn parse_options(
    args: &[String],
    base_cfg: SimConfig,
    window_needs_json: bool,
) -> Result<Options, String> {
    let mut opts = Options {
        mix: Vec::new(),
        policy: None,
        cfg: base_cfg,
        llc_mb: None,
        json: None,
        window: None,
        baseline: None,
        gate_pct: 10.0,
        target_ms: 800,
        out: None,
        warm_start: false,
        warm_cache: None,
        warm_image: None,
        sample_every: DEFAULT_SAMPLE_EVERY,
        io: IoMixConfig::none(),
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mix" => {
                let v = value("--mix")?;
                opts.mix = parse_mix(&v).ok_or_else(|| format!("unknown mix '{v}'"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                opts.policy =
                    Some(parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?);
            }
            "--scale" => {
                let v: u64 = value("--scale")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.with_scale(v);
            }
            "--measure" => {
                let v: u64 = value("--measure")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.instructions(v);
            }
            "--warmup" => {
                let v: u64 = value("--warmup")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.warmup(v);
            }
            "--seed" => {
                let v: u64 = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
                opts.cfg = opts.cfg.seed(v);
            }
            "--llc-mb" => {
                let v: usize = value("--llc-mb")?.parse().map_err(|e| format!("{e}"))?;
                opts.llc_mb = Some(v);
            }
            "--no-prefetch" => {
                opts.cfg = opts.cfg.prefetch(false);
            }
            "--json" => {
                opts.json = Some(value("--json")?);
            }
            "--window" => {
                let v: u64 = value("--window")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--window must be positive".into());
                }
                opts.window = Some(v);
            }
            "--jobs" => {
                let v: usize = value("--jobs")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--jobs must be positive".into());
                }
                opts.cfg = opts.cfg.jobs(v);
            }
            "--shard-jobs" => {
                let v: usize = value("--shard-jobs")?.parse().map_err(|e| format!("{e}"))?;
                // 0 is meaningful here: auto-detect the core count.
                opts.cfg = opts.cfg.shard_jobs(v);
            }
            "--engine-jobs" => {
                let v: usize = value("--engine-jobs")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                // 0 is meaningful here: auto-detect the core count.
                opts.cfg = opts.cfg.engine_jobs(v);
            }
            "--baseline" => {
                opts.baseline = Some(value("--baseline")?);
            }
            "--gate" => {
                let v: f64 = value("--gate")?.parse().map_err(|e| format!("{e}"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err("--gate must be positive".into());
                }
                opts.gate_pct = v;
            }
            "--target-ms" => {
                let v: u64 = value("--target-ms")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--target-ms must be positive".into());
                }
                opts.target_ms = v;
            }
            "--out" => {
                opts.out = Some(value("--out")?);
            }
            "--warm-start" => {
                opts.warm_start = true;
            }
            "--warm-cache" => {
                opts.warm_cache = Some(value("--warm-cache")?);
                // A persistent cache only makes sense on the warm-once
                // path, so asking for one opts into it.
                opts.warm_start = true;
            }
            "--warm-image" => {
                opts.warm_image = Some(value("--warm-image")?);
            }
            "--sample-every" => {
                let v: u32 = value("--sample-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--sample-every must be positive".into());
                }
                opts.sample_every = v;
            }
            "--io" => {
                for part in value("--io")?.split(',') {
                    let spec = IoAgentSpec::parse(part.trim()).map_err(|e| format!("--io: {e}"))?;
                    opts.io = opts.io.clone().agent(spec);
                }
            }
            "--io-ways" => {
                let v: usize = value("--io-ways")?.parse().map_err(|e| format!("{e}"))?;
                if v == 0 {
                    return Err("--io-ways must be positive".into());
                }
                opts.io = opts.io.clone().inject_ways(v);
            }
            "--io-partition" => {
                opts.io = opts.io.clone().partition(true);
            }
            "--smoke" => {
                opts.smoke = true;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if window_needs_json && opts.window.is_some() && opts.json.is_none() {
        return Err("--window only makes sense with --json".into());
    }
    if opts.io.partition && opts.io.inject_ways.is_none() {
        return Err("--io-partition requires --io-ways".into());
    }
    if !opts.io.is_trivial() && (opts.warm_start || opts.warm_cache.is_some()) {
        return Err("--io cannot be combined with --warm-start/--warm-cache \
             (checkpoints do not cover device I/O agents)"
            .into());
    }
    Ok(opts)
}

/// Time-series window used for `--json` when `--window` is not given.
const DEFAULT_WINDOW: u64 = 100_000;

fn print_run(opts: &Options, spec: &PolicySpec) -> (f64, Option<RunReport>) {
    let mut run = MixRun::new(&opts.cfg, &opts.mix)
        .spec(spec)
        .io(opts.io.clone());
    if let Some(mb) = opts.llc_mb {
        run = run.llc_capacity_full_scale(mb * 1024 * 1024);
    }
    let (r, report) = if opts.json.is_some() {
        let window = opts.window.unwrap_or(DEFAULT_WINDOW);
        let (r, report) = run.run_report(Some(window));
        (r, Some(report))
    } else {
        (run.run(), None)
    };
    print_result(&spec.name, &r);
    print_io_result(&r);
    (r.throughput(), report)
}

/// One-line device-I/O summary after a run's per-thread table; silent
/// for runs without I/O agents.
fn print_io_result(r: &RunResult) {
    if let Some((io, _)) = &r.io {
        println!(
            "io: {} injections ({} hits, {} fills), {} LLC evictions, \
             {} writebacks, {} io-induced victim misses\n",
            io.injections,
            io.inject_hits,
            io.inject_fills,
            io.llc_evictions,
            io.writebacks,
            io.victim_misses_io,
        );
    }
}

fn print_result(name: &str, r: &tla::sim::RunResult) {
    println!("policy: {name}");
    let mut t = Table::new(&[
        "core", "app", "IPC", "L1 MPKI", "L2 MPKI", "LLC MPKI", "victims",
    ]);
    for (i, th) in r.threads.iter().enumerate() {
        let row = vec![
            i.to_string(),
            th.app.short_name().to_string(),
            format!("{:.3}", th.ipc()),
            format!("{:.2}", th.l1_mpki()),
            format!("{:.2}", th.l2_mpki()),
            format!("{:.2}", th.llc_mpki()),
            th.stats.inclusion_victims().to_string(),
        ];
        if let Err(e) = t.try_add_row(row) {
            eprintln!("warning: dropping malformed report row: {e}");
        }
    }
    print!("{t}");
    println!(
        "throughput {:.3}; back-inv {}, ECI msgs {}, QBS queries {}, TLHs {}, snoops {}\n",
        r.throughput(),
        r.global.back_invalidates,
        r.global.eci_invalidates,
        r.global.qbs_queries,
        r.global.tlh_hints,
        r.global.snoop_probes,
    );
}

fn write_json(path: &str, text: &str) -> ExitCode {
    match std::fs::write(path, text) {
        Ok(()) => {
            eprintln!("report written to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("apps (SPEC CPU2006 models):");
    for app in SpecApp::ALL {
        println!(
            "  {:4} {:10} ({})",
            app.short_name(),
            format!("{app:?}"),
            app.category()
        );
    }
    println!("\nmixes (Table II):");
    for m in table2_mixes() {
        println!("  {m}");
    }
    println!("\npolicies: baseline tlh-il1 tlh-dl1 tlh-l1 tlh-l2 tlh-l1-l2 eci qbs");
    println!("          qbs-il1 qbs-dl1 qbs-l1 qbs-l2 non-inclusive exclusive");
    println!(
        "          vc<N> (victim cache with N entries, 1..={}; vc32 = paper §VI)",
        tla::cache::MAX_WAYS
    );
    println!("\nprobe kernel: {}", tla::cache::kernel_name());
    ExitCode::SUCCESS
}

fn cmd_table1(opts: &Options) -> ExitCode {
    let mut t = Table::new(&["app", "category", "L1 MPKI", "L2 MPKI", "LLC MPKI"]);
    for r in mpki_table(&opts.cfg) {
        t.add_row(vec![
            r.app.short_name().to_string(),
            r.app.category().to_string(),
            format!("{:.2}", r.l1_mpki),
            format!("{:.2}", r.l2_mpki),
            format!("{:.2}", r.llc_mpki),
        ]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("run: --mix is required");
        return ExitCode::FAILURE;
    }
    let spec = opts.policy.clone().unwrap_or_else(PolicySpec::baseline);
    let (_, report) = print_run(opts, &spec);
    if let (Some(path), Some(report)) = (&opts.json, report) {
        return write_json(path, &report.to_json_string());
    }
    ExitCode::SUCCESS
}

/// The 7-policy suite `compare` and `analyze` sweep: the paper's headline
/// policies plus the non-inclusive/exclusive reference points.
fn compare_specs() -> [PolicySpec; 7] {
    [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ]
}

/// Gap to the MIN oracle as a fraction of the optimal miss count:
/// `(measured - opt) / opt`. An oracle with zero misses divides by one
/// instead, so the gap degenerates to the absolute measured miss count
/// and the JSON stays finite.
fn gap_to_opt(measured_misses: u64, opt_misses: u64) -> f64 {
    (measured_misses as f64 - opt_misses as f64) / (opt_misses.max(1) as f64)
}

/// Fraction of L2 misses the attribution hooks charged to LLC-caused
/// back-invalidates (the paper's inclusion victims), summed over cores.
fn victim_rate(r: &RunResult) -> f64 {
    let victims: u64 = r
        .threads
        .iter()
        .map(|t| t.stats.misses_inclusion_victim)
        .sum();
    let l2_misses: u64 = r.threads.iter().map(|t| t.stats.l2_misses).sum();
    if l2_misses == 0 {
        0.0
    } else {
        victims as f64 / l2_misses as f64
    }
}

fn cmd_compare(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("compare: --mix is required");
        return ExitCode::FAILURE;
    }
    let specs = compare_specs();
    // All policies run in parallel (bit-identical to serial, `--jobs`
    // workers); printing happens afterwards, in spec order.
    let window = opts
        .json
        .as_ref()
        .map(|_| opts.window.unwrap_or(DEFAULT_WINDOW));
    let llc = opts.llc_mb.map(|mb| mb * 1024 * 1024);
    let warm_cache = match &opts.warm_cache {
        Some(dir) => match WarmCache::open(dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("error: cannot open warm cache {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let results = if opts.warm_start {
        // Warm once under the baseline (or pull the warm image from the
        // cache directory), fan the measured phases out.
        match run_policy_reports_warm_start_cached(
            &opts.cfg,
            &opts.mix,
            &specs,
            llc,
            window,
            warm_cache.as_ref(),
        ) {
            Ok(results) => results,
            Err(e) => {
                eprintln!("error: warm-start resume failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        run_policy_reports_io(&opts.cfg, &opts.mix, &specs, llc, window, &opts.io)
    };
    // One MIN-oracle replay covers every policy: the oracle sees the same
    // reference stream whatever the hierarchy does with it.
    let opt = optimal_llc(&opts.cfg, &opts.mix, llc);
    let mut baseline = None;
    let mut reports = Vec::new();
    for (spec, (r, report)) in specs.iter().zip(results) {
        print_result(&spec.name, &r);
        print_io_result(&r);
        let tp = r.throughput();
        let base = *baseline.get_or_insert(tp);
        let gap = gap_to_opt(r.llc_misses(), opt.misses);
        println!(
            "  -> {:+.1}% vs baseline; gap-to-opt {:+.1}% ({} vs {} optimal), \
             inclusion-victim rate {:.2}%\n",
            (tp / base - 1.0) * 100.0,
            gap * 100.0,
            r.llc_misses(),
            opt.misses,
            victim_rate(&r) * 100.0,
        );
        if let Some(mut report) = report {
            report.opt_misses = Some(opt.misses);
            report.gap_to_opt = Some(gap);
            report.inclusion_victim_rate = Some(report.measured_victim_rate());
            reports.push(report);
        }
    }
    if let Some(path) = &opts.json {
        let doc = JsonValue::array(reports.iter().map(RunReport::to_json));
        return write_json(path, &doc.to_pretty());
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("analyze: --mix is required");
        return ExitCode::FAILURE;
    }
    let specs = compare_specs();
    let llc = opts.llc_mb.map(|mb| mb * 1024 * 1024);
    // Analyze always instruments (the analytics ride on the telemetry
    // stream), so a window exists with or without --json.
    let window = opts.window.unwrap_or(DEFAULT_WINDOW);
    let opt = optimal_llc(&opts.cfg, &opts.mix, llc);
    let results = run_policy_reports_analyzed_io(
        &opts.cfg,
        &opts.mix,
        &specs,
        llc,
        Some(window),
        opts.sample_every,
        &opts.io,
    );
    println!(
        "MIN oracle (demand-fetch, LLC geometry): {} accesses, {} hits, {} misses",
        opt.accesses, opt.hits, opt.misses
    );
    if opts.cfg.prefetch_enabled() {
        println!(
            "note: MIN replays demand fetches only; with the stream prefetcher \
             on, measured demand misses can undercut it and gap-to-opt goes \
             negative. Use --no-prefetch for a true lower bound."
        );
    }
    let with_io = !opts.io.is_trivial();
    let mut headers = vec![
        "policy",
        "LLC misses",
        "opt misses",
        "gap-to-opt",
        "victim rate",
        "reuse p50",
        "reuse p90",
    ];
    if with_io {
        headers.push("io victims");
    }
    let mut table = Table::new(&headers);
    let pct = |p: Option<u64>| p.map_or_else(|| "-".into(), |v| v.to_string());
    let mut reports = Vec::new();
    for (r, mut report) in results {
        report.opt_misses = Some(opt.misses);
        report.gap_to_opt = Some(gap_to_opt(r.llc_misses(), opt.misses));
        let reuse = report.reuse.as_ref().expect("analyzed runs carry reuse");
        let mut row = vec![
            r.spec_name.clone(),
            r.llc_misses().to_string(),
            opt.misses.to_string(),
            format!("{:+.1}%", report.gap_to_opt.unwrap_or(0.0) * 100.0),
            format!(
                "{:.2}%",
                report.inclusion_victim_rate.unwrap_or(0.0) * 100.0
            ),
            pct(reuse.global.percentile(50.0)),
            pct(reuse.global.percentile(90.0)),
        ];
        if with_io {
            row.push(
                r.io.as_ref()
                    .map_or_else(|| "-".into(), |(s, _)| s.victim_misses_io.to_string()),
            );
        }
        table.add_row(row);
        reports.push(report);
    }
    print!("{table}");
    println!(
        "reuse distances sampled in every {}th LLC set; percentiles are \
         log-bucket upper bounds in lines",
        opts.sample_every
    );
    if let Some(path) = &opts.json {
        let doc = JsonValue::array(reports.iter().map(RunReport::to_json));
        return write_json(path, &doc.to_pretty());
    }
    ExitCode::SUCCESS
}

/// The policy axis of `io-sweep`: the inclusive LRU baseline plus the
/// paper's three management families (TLH, ECI, QBS), so the sweep shows
/// whether temporal-locality awareness recovers what device injection
/// costs the apps.
fn io_sweep_specs() -> [PolicySpec; 4] {
    [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
    ]
}

/// The device axis of `io-sweep`. The full grid walks from no I/O through
/// each agent alone, both together, and then reins the leaky-DMA stream in
/// with an injection-way limit, with partitioning, and with the NIC riding
/// along; `--smoke` keeps the three-point subset CI diffs across engines.
fn io_sweep_scenarios(smoke: bool) -> Vec<IoMixConfig> {
    let nic = || IoAgentSpec::nic().period(3).lines(512);
    let dma = || IoAgentSpec::dma().period(2);
    if smoke {
        return vec![
            IoMixConfig::none(),
            IoMixConfig::none().agent(dma()),
            IoMixConfig::none().agent(dma()).inject_ways(2),
        ];
    }
    vec![
        IoMixConfig::none(),
        IoMixConfig::none().agent(nic()),
        IoMixConfig::none().agent(dma()),
        IoMixConfig::none().agent(nic()).agent(dma()),
        IoMixConfig::none().agent(dma()).inject_ways(2),
        IoMixConfig::none()
            .agent(dma())
            .inject_ways(2)
            .partition(true),
        IoMixConfig::none().agent(nic()).agent(dma()).inject_ways(2),
    ]
}

fn cmd_io_sweep(opts: &Options) -> ExitCode {
    if !opts.io.is_trivial() {
        eprintln!("io-sweep: the sweep supplies its own device scenarios; drop --io/--io-ways");
        return ExitCode::FAILURE;
    }
    if opts.warm_start || opts.warm_cache.is_some() {
        eprintln!(
            "io-sweep: --warm-start/--warm-cache are not supported \
             (checkpoints do not cover device I/O agents)"
        );
        return ExitCode::FAILURE;
    }
    let mix = if opts.mix.is_empty() {
        vec![SpecApp::Sjeng]
    } else {
        opts.mix.clone()
    };
    let cfg = if opts.smoke {
        // CI mode: tiny quotas, the point is exercising the whole grid
        // deterministically, not producing publishable numbers.
        opts.cfg.clone().warmup(20_000).instructions(60_000)
    } else {
        opts.cfg.clone()
    };
    let specs = io_sweep_specs();
    let scenarios = io_sweep_scenarios(opts.smoke);
    let llc = opts.llc_mb.map(|mb| mb * 1024 * 1024);
    let window = opts
        .json
        .as_ref()
        .map(|_| opts.window.unwrap_or(DEFAULT_WINDOW));
    // One MIN-oracle replay covers the whole grid: device traffic never
    // changes the app reference stream, so the optimum is I/O-invariant
    // and gap-to-opt directly measures I/O-induced damage.
    let opt = optimal_llc(&cfg, &mix, llc);
    let mix_label = mix
        .iter()
        .map(|a| a.short_name())
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "app-vs-I/O sweep: mix {mix_label}, {} device scenarios x {} policies \
         (MIN oracle: {} misses)",
        scenarios.len(),
        specs.len(),
        opt.misses
    );
    let mut table = Table::new(&[
        "io",
        "policy",
        "LLC misses",
        "gap-to-opt",
        "victim rate",
        "io victims",
        "injections",
        "throughput",
    ]);
    let mut reports = Vec::new();
    for io in &scenarios {
        let results = run_policy_reports_io(&cfg, &mix, &specs, llc, window, io);
        for (spec, (r, report)) in specs.iter().zip(results) {
            let gap = gap_to_opt(r.llc_misses(), opt.misses);
            let (io_victims, injections) = r.io.as_ref().map_or_else(
                || ("-".to_string(), "-".to_string()),
                |(s, _)| (s.victim_misses_io.to_string(), s.injections.to_string()),
            );
            table.add_row(vec![
                io.label(),
                spec.name.clone(),
                r.llc_misses().to_string(),
                format!("{:+.1}%", gap * 100.0),
                format!("{:.2}%", victim_rate(&r) * 100.0),
                io_victims,
                injections,
                format!("{:.3}", r.throughput()),
            ]);
            if let Some(mut report) = report {
                report.opt_misses = Some(opt.misses);
                report.gap_to_opt = Some(gap);
                report.inclusion_victim_rate = Some(report.measured_victim_rate());
                reports.push(report);
            }
        }
    }
    print!("{table}");
    if let Some(path) = &opts.json {
        let doc = JsonValue::array(reports.iter().map(RunReport::to_json));
        return write_json(path, &doc.to_pretty());
    }
    ExitCode::SUCCESS
}

/// Fixed parameters of the `kv/*` bench-matrix entries (and the defaults
/// `kv-bench` starts from): a 64k keyspace against a 16k-entry cache, so
/// zipf traffic hits mostly and scans evict constantly.
const KV_BENCH_KEYS: u64 = 65_536;
const KV_BENCH_OPS_PER_THREAD: u64 = 100_000;
const KV_BENCH_CAPACITY: usize = 16_384;

/// One bench-matrix workload: a simulator mix or a kv-service load run.
/// Both report deterministic work-unit counts (memory accesses for the
/// simulator, operations for the service), so the calibration-ratio gate
/// treats them uniformly.
#[derive(Clone)]
enum BenchJob {
    /// A full hierarchy simulation of `apps` under `spec`, optionally
    /// with device I/O agents injecting alongside (the `io/*` entries)
    /// and optionally pinned to an engine mode + worker count (the
    /// `par/*` entries; `None` uses the process default).
    Sim {
        apps: Vec<SpecApp>,
        spec: PolicySpec,
        io: IoMixConfig,
        engine: Option<(EngineMode, usize)>,
    },
    /// A multi-threaded load run against a fresh [`ShardedKv`].
    Kv {
        policy: KvPolicy,
        workload: KvWorkload,
        threads: usize,
    },
}

impl BenchJob {
    fn cores(&self) -> usize {
        match self {
            BenchJob::Sim { apps, .. } => apps.len(),
            BenchJob::Kv { threads, .. } => *threads,
        }
    }

    /// The engine pin of a `par/*` entry, if any.
    fn engine(&self) -> Option<(EngineMode, usize)> {
        match self {
            BenchJob::Sim { engine, .. } => *engine,
            BenchJob::Kv { .. } => None,
        }
    }

    /// Runs a simulator entry to its result: resumed from the warm image
    /// when one is given and this entry's configuration matches it
    /// (policy and engine are free axes of a checkpoint, so every
    /// matching entry times the measured phase over identical warm
    /// state), cold otherwise. The bool reports whether the image was
    /// used.
    fn sim_result(
        cfg: &SimConfig,
        apps: &[SpecApp],
        spec: &PolicySpec,
        io: &IoMixConfig,
        engine: Option<(EngineMode, usize)>,
        warm: Option<&Checkpoint>,
    ) -> (RunResult, bool) {
        let cfg = match engine {
            Some((_, jobs)) => cfg.clone().engine_jobs(jobs),
            None => cfg.clone(),
        };
        let build = || {
            let mut run = MixRun::new(&cfg, apps).spec(spec).io(io.clone());
            if let Some((mode, _)) = engine {
                run = run.engine_mode(mode);
            }
            run
        };
        if let Some(ck) = warm {
            // Checkpoints never cover I/O mixes, so io entries go cold
            // without even asking.
            if io.is_trivial() {
                if let Ok(r) = build().resume(ck) {
                    return (r, true);
                }
            }
        }
        (build().run(), false)
    }

    /// Work units of one run, plus whether the warm image was used. For
    /// simulator entries this costs one untimed run (which doubles as
    /// warm-up); kv entries issue a fixed op count by construction.
    fn accesses(&self, cfg: &SimConfig, warm: Option<&Checkpoint>) -> (u64, bool) {
        match self {
            BenchJob::Sim {
                apps,
                spec,
                io,
                engine,
            } => {
                let (r, warmed) = Self::sim_result(cfg, apps, spec, io, *engine, warm);
                let accesses = r
                    .threads
                    .iter()
                    .map(|t| t.stats.l1i_accesses + t.stats.l1d_accesses)
                    .sum();
                (accesses, warmed)
            }
            BenchJob::Kv { threads, .. } => (KV_BENCH_OPS_PER_THREAD * *threads as u64, false),
        }
    }

    /// Executes the job once, discarding results (timing-loop body).
    fn run_once(&self, cfg: &SimConfig, warm: Option<&Checkpoint>) {
        match self {
            BenchJob::Sim {
                apps,
                spec,
                io,
                engine,
            } => {
                let _ = Self::sim_result(cfg, apps, spec, io, *engine, warm);
            }
            BenchJob::Kv {
                policy,
                workload,
                threads,
            } => {
                let kv = ShardedKv::new(KvConfig::new(KV_BENCH_CAPACITY, *policy).with_seed(1))
                    .expect("bench kv geometry is valid");
                let spec = LoadSpec {
                    workload: *workload,
                    keys: KV_BENCH_KEYS,
                    ops_per_thread: KV_BENCH_OPS_PER_THREAD,
                    threads: *threads,
                    put_permille: 50,
                    seed: 1,
                };
                let _ = run_load(&kv, &spec);
            }
        }
    }
}

/// The fixed bench matrix: the paper's four management policies crossed
/// with 1/2/4/8-core LLC-miss-heavy mixes (mcf and libquantum are the two
/// highest-LLC-MPKI apps of Table I, so every entry exercises the LLC miss
/// path the scratch-buffer rewrite targets; the 8-core mix stresses
/// scheduler-heap and sharer-bitmap scaling), plus the `kv/*` service
/// entries that time the sharded concurrent cache under load-generator
/// threads and the `io/*` entries that time the device-injection path.
fn bench_matrix() -> Vec<(String, BenchJob)> {
    use SpecApp::{Libquantum, Mcf};
    let mixes: [(&str, Vec<SpecApp>); 4] = [
        ("1core", vec![Mcf]),
        ("2core", vec![Mcf, Libquantum]),
        ("4core-llcmiss", vec![Mcf, Mcf, Libquantum, Libquantum]),
        (
            "8core",
            vec![
                Mcf, Libquantum, Mcf, Libquantum, Mcf, Libquantum, Mcf, Libquantum,
            ],
        ),
    ];
    let policies = [
        ("baseline", PolicySpec::baseline()),
        ("tlh-l1", PolicySpec::tlh_l1()),
        ("eci", PolicySpec::eci()),
        ("qbs", PolicySpec::qbs()),
    ];
    let mut matrix = Vec::new();
    for (mix_name, apps) in &mixes {
        for (pol_name, spec) in &policies {
            matrix.push((
                format!("{mix_name}/{pol_name}"),
                BenchJob::Sim {
                    apps: apps.clone(),
                    spec: spec.clone(),
                    io: IoMixConfig::none(),
                    engine: None,
                },
            ));
        }
    }
    // Probe-heavy entry: a 128-entry fully-associative victim cache behind
    // the LLC makes the linear tag scan (the code the SIMD set-probe
    // kernels accelerate) the dominant cost of every LLC miss; mcf's
    // LLC-miss-heavy stream keeps that path hot.
    matrix.push((
        "1core-vc128/vc128".to_string(),
        BenchJob::Sim {
            apps: vec![Mcf],
            spec: PolicySpec::victim_cache(128),
            io: IoMixConfig::none(),
            engine: None,
        },
    ));
    // Injection-path entries: a period-2 leaky-DMA agent keeps the
    // io_inject fast path (device fills, way-masked victim search,
    // IoInjection back-invalidates) hot alongside two demand-heavy cores
    // — once under plain LRU, once under the way-limited DDIO model.
    let dma = IoMixConfig::none().agent(IoAgentSpec::dma().period(2));
    matrix.push((
        "io/2core-dma/baseline".to_string(),
        BenchJob::Sim {
            apps: vec![Mcf, Libquantum],
            spec: PolicySpec::baseline(),
            io: dma.clone(),
            engine: None,
        },
    ));
    matrix.push((
        "io/2core-dma-w2/baseline".to_string(),
        BenchJob::Sim {
            apps: vec![Mcf, Libquantum],
            spec: PolicySpec::baseline(),
            io: dma.clone().inject_ways(2),
            engine: None,
        },
    ));
    // Parallel-engine entries: the same multi-core mixes (and one
    // injection mix) under the epoch pipeline, pinned to as many epoch
    // workers as simulated cores, so the engine's speedup — or lack of
    // it on a starved host — is a gated number tracked per revision
    // rather than a claim made once. Output is byte-identical to the
    // default engine; only wall-clock may differ.
    matrix.push((
        "par/4core-llcmiss/baseline".to_string(),
        BenchJob::Sim {
            apps: vec![Mcf, Mcf, Libquantum, Libquantum],
            spec: PolicySpec::baseline(),
            io: IoMixConfig::none(),
            engine: Some((EngineMode::Parallel, 4)),
        },
    ));
    matrix.push((
        "par/8core/baseline".to_string(),
        BenchJob::Sim {
            apps: vec![
                Mcf, Libquantum, Mcf, Libquantum, Mcf, Libquantum, Mcf, Libquantum,
            ],
            spec: PolicySpec::baseline(),
            io: IoMixConfig::none(),
            engine: Some((EngineMode::Parallel, 8)),
        },
    ));
    matrix.push((
        "par/io/2core-dma/baseline".to_string(),
        BenchJob::Sim {
            apps: vec![Mcf, Libquantum],
            spec: PolicySpec::baseline(),
            io: dma,
            engine: Some((EngineMode::Parallel, 2)),
        },
    ));
    // Service entries: zipf scaling across thread counts under Clock (the
    // lock-striping story), plus the scan-burst mix under S3-FIFO (the
    // admission-policy story). Units are ops/s rather than accesses/s, but
    // the gate only ever compares an entry to its own baseline ratio.
    for (name, policy, workload, threads) in [
        ("kv/zipf-1t", KvPolicy::Clock, KvWorkload::ZIPF, 1),
        ("kv/zipf-4t", KvPolicy::Clock, KvWorkload::ZIPF, 4),
        ("kv/zipf-8t", KvPolicy::Clock, KvWorkload::ZIPF, 8),
        ("kv/mix-8t-s3fifo", KvPolicy::S3Fifo, KvWorkload::MIX, 8),
    ] {
        matrix.push((
            name.to_string(),
            BenchJob::Kv {
                policy,
                workload,
                threads,
            },
        ));
    }
    matrix
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// One timed bench-matrix entry. `accesses_per_sec` comes from the fastest
/// measured batch (noise-robust); `accesses_per_sec_mean` from the whole
/// measured window; `calibration_ratio` is the median over rounds of the
/// entry's throughput divided by an *immediately adjacent* calibration
/// measurement (see `cmd_bench`) — the machine-independent number the gate
/// compares.
struct BenchEntry {
    name: String,
    cores: usize,
    accesses: u64,
    iters: u64,
    wall_s: f64,
    accesses_per_sec: f64,
    accesses_per_sec_mean: f64,
    calibration_ratio: f64,
    /// Probe kernel the run dispatched to (`avx2`, `scalar4`, ...), so a
    /// committed baseline records which kernel produced its numbers.
    kernel: &'static str,
    /// Execution engine the entry was pinned to (`par/*` entries) and its
    /// worker count; `None` means the process-default engine.
    engine: Option<(EngineMode, usize)>,
    /// Whether the entry timed resumes from a `--warm-image` checkpoint
    /// instead of cold runs (only meaningful when one was given).
    warmed_from_image: bool,
}

impl BenchEntry {
    fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("cores", JsonValue::Int(self.cores as u64)),
            ("accesses", JsonValue::Int(self.accesses)),
            ("iters", JsonValue::Int(self.iters)),
            ("wall_s", JsonValue::Num(self.wall_s)),
            ("accesses_per_sec", JsonValue::Num(self.accesses_per_sec)),
            (
                "accesses_per_sec_mean",
                JsonValue::Num(self.accesses_per_sec_mean),
            ),
            ("calibration_ratio", JsonValue::Num(self.calibration_ratio)),
            ("kernel", JsonValue::Str(self.kernel.into())),
        ];
        if let Some((mode, jobs)) = self.engine {
            pairs.push(("engine", JsonValue::Str(mode.label().into())));
            pairs.push(("engine_jobs", JsonValue::Int(jobs as u64)));
        }
        if self.warmed_from_image {
            pairs.push(("warmed_from_image", JsonValue::Bool(true)));
        }
        JsonValue::object(pairs)
    }
}

/// The entry every bench report must contain: all other entries gate on
/// their throughput *ratio* to it, so a committed baseline stays valid on
/// machines of any absolute speed.
const GATE_CALIBRATION_ENTRY: &str = "1core/baseline";

/// How many interleaved passes over the matrix the timing budget is split
/// into (see `cmd_bench`).
const BENCH_ROUNDS: u64 = 5;

/// Schema tag written into fresh bench reports. v3 adds the `rounds`
/// echo; entry-level fields are unchanged, so v2 baselines stay valid
/// gate inputs.
const BENCH_SCHEMA: &str = "tla-bench-report-v3";

/// Schema tags [`bench_gate`] accepts as baselines. The gate only reads
/// entry names and `calibration_ratio`, both of which mean the same
/// thing in v2 and v3.
const BENCH_SCHEMAS_ACCEPTED: [&str; 2] = ["tla-bench-report-v2", "tla-bench-report-v3"];

/// Compares fresh entries against a committed baseline report, failing on
/// any per-entry *relative* throughput regression beyond `gate_pct`.
///
/// The compared number is each entry's `calibration_ratio`: its throughput
/// divided by a calibration measurement (`1core/baseline`) taken
/// immediately before it in the same run. A uniformly faster or slower
/// machine — or a speed epoch that drifts across the run — shifts both
/// halves of every pair but no ratio, so the gate catches per-entry
/// regressions (an 8-core path getting slower relative to the 1-core
/// path) without re-blessing per machine.
fn bench_gate(entries: &[BenchEntry], baseline_path: &str, gate_pct: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    // Baselines written before the schema tag existed are accepted as-is;
    // a *present* tag must be one this binary understands, so a future v4
    // fails loudly instead of gating on reinterpreted fields.
    if let Some(schema) = doc.get("schema").and_then(JsonValue::as_str) {
        if !BENCH_SCHEMAS_ACCEPTED.contains(&schema) {
            return Err(format!(
                "baseline {baseline_path}: unsupported schema '{schema}' \
                 (this binary reads {})",
                BENCH_SCHEMAS_ACCEPTED.join(", ")
            ));
        }
    }
    let base_entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("baseline {baseline_path}: no 'entries' array"))?;
    let mut failures = Vec::new();
    for e in entries {
        // The calibration entry's ratio is ~1 by construction; gating it
        // against itself would be meaningless.
        if e.name == GATE_CALIBRATION_ENTRY {
            continue;
        }
        let Some(base) = base_entries
            .iter()
            .find(|b| b.get("name").and_then(JsonValue::as_str) == Some(e.name.as_str()))
        else {
            eprintln!("gate: no baseline entry for {} — skipping", e.name);
            continue;
        };
        let Some(base_ratio) = base.get("calibration_ratio").and_then(JsonValue::as_f64) else {
            return Err(format!(
                "baseline {baseline_path}: entry {} has no 'calibration_ratio' — \
                 re-bless the baseline with this binary",
                e.name
            ));
        };
        if base_ratio <= 0.0 {
            return Err(format!(
                "baseline {baseline_path}: entry {} has non-positive calibration_ratio",
                e.name
            ));
        }
        let fresh_ratio = e.calibration_ratio;
        let delta_pct = (fresh_ratio / base_ratio - 1.0) * 100.0;
        let verdict = if delta_pct < -gate_pct {
            failures.push(format!(
                "{}: ratio {:.3} vs baseline ratio {:.3} ({:+.1}% < -{gate_pct}%)",
                e.name, fresh_ratio, base_ratio, delta_pct
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!("gate {:20} {delta_pct:+7.1}%  {verdict}", e.name);
        if delta_pct > gate_pct {
            eprintln!(
                "gate: {} improved {delta_pct:+.1}% relative to '{GATE_CALIBRATION_ENTRY}' — \
                 consider re-blessing the baseline",
                e.name
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "relative throughput regressed beyond {gate_pct}%:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn cmd_bench(opts: &Options) -> ExitCode {
    let cfg = &opts.cfg;
    eprintln!(
        "bench: measure={} warmup={} seed={} scale=1/{} target={}ms per entry, kernel={}",
        cfg.instruction_quota(),
        cfg.warmup_quota(),
        cfg.seed_value(),
        cfg.scale(),
        opts.target_ms,
        tla::cache::kernel_name(),
    );
    let t_total = std::time::Instant::now();
    let matrix = bench_matrix();

    // The optional frozen warm image: loaded once, resumed by every
    // matching sim entry (the whole point — identical warm state across
    // binary revisions, so relative regressions are bisectable).
    let warm_image = match &opts.warm_image {
        Some(path) => match Checkpoint::load(path) {
            Ok(ck) => Some(ck),
            Err(e) => {
                eprintln!("error: cannot load --warm-image {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let warm = warm_image.as_ref();

    // One untimed run per entry pins the deterministic access count,
    // doubles as warm-up before the timed rounds, and decides whether the
    // warm image covers the entry.
    let mut warmed = Vec::with_capacity(matrix.len());
    let accesses: Vec<u64> = matrix
        .iter()
        .map(|(name, job)| {
            let (accesses, from_image) = job.accesses(cfg, warm);
            if warm.is_some() {
                eprintln!(
                    "bench: {name}: {}",
                    if from_image {
                        "warmed from image"
                    } else {
                        "cold (image does not cover this entry)"
                    }
                );
            }
            warmed.push(from_image);
            accesses
        })
        .collect();

    // The timing budget is split into rounds interleaved across the whole
    // matrix rather than spent contiguously per entry, and inside each
    // round an entry is timed *alternating iteration-by-iteration* with
    // the calibration workload (`1core/baseline`). Host speed drifts on a
    // timescale of seconds to tens of seconds (frequency scaling,
    // co-tenants); the gate compares the entry/calibration *ratio*, and
    // with the two series interleaved at sub-second granularity their
    // minima land in the same speed epoch, so the ratio stays clean
    // however the run straddles epochs. The per-entry ratio is the median
    // over rounds; absolute throughput keeps the fastest iteration across
    // all rounds. A single run costs ≥25 ms, so per-iteration `Instant`
    // overhead is noise and no batching is needed.
    let cal = matrix
        .iter()
        .position(|(n, _)| n == GATE_CALIBRATION_ENTRY)
        .expect("bench matrix contains the calibration entry");
    let cal_job = matrix[cal].1.clone();
    let rounds = BENCH_ROUNDS.min(opts.target_ms.max(1));
    let per_round = std::time::Duration::from_millis((opts.target_ms / rounds).max(1));
    let mut best_npi = vec![f64::INFINITY; matrix.len()];
    let mut iters = vec![0u64; matrix.len()];
    let mut nanos = vec![0u128; matrix.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); matrix.len()];
    for _ in 0..rounds {
        for (i, (_, job)) in matrix.iter().enumerate() {
            let round_start = std::time::Instant::now();
            let mut best_entry = u128::MAX;
            let mut best_cal = u128::MAX;
            let mut pairs = 0u32;
            loop {
                let t0 = std::time::Instant::now();
                cal_job.run_once(cfg, warm);
                best_cal = best_cal.min(t0.elapsed().as_nanos());
                let t0 = std::time::Instant::now();
                job.run_once(cfg, warm);
                let entry_nanos = t0.elapsed().as_nanos();
                best_entry = best_entry.min(entry_nanos);
                iters[i] += 1;
                nanos[i] += entry_nanos;
                pairs += 1;
                // A min over one sample is no min at all — entries whose
                // single run overshoots the round budget (the 8-core mixes
                // at small --target-ms) still get two pairs.
                if round_start.elapsed() >= per_round && pairs >= 2 {
                    break;
                }
            }
            best_npi[i] = best_npi[i].min(best_entry as f64);
            let entry_aps = accesses[i] as f64 * 1e9 / best_entry as f64;
            let cal_aps = accesses[cal] as f64 * 1e9 / best_cal as f64;
            ratios[i].push(entry_aps / cal_aps);
        }
    }

    let mut entries = Vec::new();
    let mut table = Table::new(&["entry", "cores", "accesses", "iters", "Macc/s", "ratio"]);
    for (i, (name, job)) in matrix.into_iter().enumerate() {
        let accesses_per_sec = accesses[i] as f64 * 1e9 / best_npi[i];
        let accesses_per_sec_mean = accesses[i] as f64 * 1e9 * iters[i] as f64 / nanos[i] as f64;
        let calibration_ratio = {
            let r = &mut ratios[i];
            r.sort_by(f64::total_cmp);
            r[r.len() / 2]
        };
        table.add_row(vec![
            name.clone(),
            job.cores().to_string(),
            accesses[i].to_string(),
            iters[i].to_string(),
            format!("{:.2}", accesses_per_sec / 1e6),
            format!("{calibration_ratio:.3}"),
        ]);
        entries.push(BenchEntry {
            name,
            cores: job.cores(),
            accesses: accesses[i],
            iters: iters[i],
            wall_s: nanos[i] as f64 / 1e9,
            accesses_per_sec,
            accesses_per_sec_mean,
            calibration_ratio,
            kernel: tla::cache::kernel_name(),
            engine: job.engine(),
            warmed_from_image: warmed[i],
        });
    }
    print!("{table}");
    let wall_total = t_total.elapsed().as_secs_f64();
    let rss = peak_rss_kb();
    println!(
        "total {wall_total:.1}s, peak RSS {}",
        rss.map_or_else(|| "n/a".into(), |kb| format!("{kb} kB"))
    );

    let mut code = ExitCode::SUCCESS;
    if let Some(path) = &opts.baseline {
        if let Err(e) = bench_gate(&entries, path, opts.gate_pct) {
            eprintln!("error: {e}");
            code = ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.json {
        let doc = JsonValue::object([
            ("schema", JsonValue::Str(BENCH_SCHEMA.into())),
            (
                "config",
                JsonValue::object([
                    ("measure", JsonValue::Int(cfg.instruction_quota())),
                    ("warmup", JsonValue::Int(cfg.warmup_quota())),
                    ("seed", JsonValue::Int(cfg.seed_value())),
                    ("scale", JsonValue::Int(cfg.scale())),
                    ("target_ms", JsonValue::Int(opts.target_ms)),
                    (
                        "warm_image",
                        opts.warm_image
                            .as_deref()
                            .map_or(JsonValue::Null, |p| JsonValue::Str(p.into())),
                    ),
                ]),
            ),
            ("rounds", JsonValue::Int(rounds)),
            ("wall_s_total", JsonValue::Num(wall_total)),
            ("peak_rss_kb", rss.map_or(JsonValue::Null, JsonValue::Int)),
            (
                "entries",
                JsonValue::array(entries.iter().map(BenchEntry::to_json)),
            ),
        ]);
        match std::fs::write(path, doc.to_pretty()) {
            Ok(()) => eprintln!("report written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

/// Options of the `kv-bench` subcommand (independent of the simulator's
/// option set — a service load run has no mixes, scales or warm-ups).
#[derive(Debug)]
struct KvBenchOptions {
    policies: Vec<KvPolicy>,
    workload: KvWorkload,
    threads: usize,
    keys: u64,
    ops: u64,
    capacity: usize,
    shards: usize,
    ways: usize,
    put_permille: u32,
    seed: u64,
    json: Option<String>,
    window: Option<u64>,
    smoke: bool,
}

/// Default per-shard series window (ops per shard) when `kv-bench --json`
/// runs without an explicit `--window`.
const KV_BENCH_WINDOW: u64 = 8_192;

fn parse_kv_bench_options(args: &[String]) -> Result<KvBenchOptions, String> {
    let mut opts = KvBenchOptions {
        policies: vec![KvPolicy::Clock],
        workload: KvWorkload::ZIPF,
        threads: 8,
        keys: KV_BENCH_KEYS,
        ops: 200_000,
        capacity: KV_BENCH_CAPACITY,
        shards: 8,
        ways: 8,
        put_permille: 50,
        seed: 1,
        json: None,
        window: None,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let positive = |name: &str, v: u64| {
            if v == 0 {
                Err(format!("{name} must be positive"))
            } else {
                Ok(v)
            }
        };
        match arg.as_str() {
            "--policy" => {
                let v = value("--policy")?;
                opts.policies = if v == "all" {
                    KvPolicy::ALL.to_vec()
                } else {
                    vec![KvPolicy::parse(&v).ok_or_else(|| format!("unknown kv policy '{v}'"))?]
                };
            }
            "--workload" => {
                let v = value("--workload")?;
                opts.workload =
                    KvWorkload::parse(&v).ok_or_else(|| format!("unknown workload '{v}'"))?;
            }
            "--threads" => {
                let v: u64 = value("--threads")?.parse().map_err(|e| format!("{e}"))?;
                opts.threads = positive("--threads", v)? as usize;
            }
            "--keys" => {
                let v: u64 = value("--keys")?.parse().map_err(|e| format!("{e}"))?;
                opts.keys = positive("--keys", v)?;
            }
            "--ops" => {
                let v: u64 = value("--ops")?.parse().map_err(|e| format!("{e}"))?;
                opts.ops = positive("--ops", v)?;
            }
            "--capacity" => {
                let v: u64 = value("--capacity")?.parse().map_err(|e| format!("{e}"))?;
                opts.capacity = positive("--capacity", v)? as usize;
            }
            "--shards" => {
                let v: u64 = value("--shards")?.parse().map_err(|e| format!("{e}"))?;
                opts.shards = positive("--shards", v)? as usize;
            }
            "--ways" => {
                let v: u64 = value("--ways")?.parse().map_err(|e| format!("{e}"))?;
                opts.ways = positive("--ways", v)? as usize;
            }
            "--put-permille" => {
                let v: u32 = value("--put-permille")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if v > 1000 {
                    return Err("--put-permille is out of 1000".into());
                }
                opts.put_permille = v;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--json" => {
                opts.json = Some(value("--json")?);
            }
            "--window" => {
                let v: u64 = value("--window")?.parse().map_err(|e| format!("{e}"))?;
                opts.window = Some(positive("--window", v)?);
            }
            "--smoke" => {
                opts.smoke = true;
            }
            other => return Err(format!("unknown kv-bench option '{other}'")),
        }
    }
    if opts.window.is_some() && opts.json.is_none() {
        return Err("--window only makes sense with --json".into());
    }
    // The series rides in the JSON report, so --json opts into it with
    // the default window unless --window chose one.
    if opts.json.is_some() {
        opts.window = Some(opts.window.unwrap_or(KV_BENCH_WINDOW));
    }
    if opts.smoke {
        // CI mode: small, fast, every policy, the scan-burst mix (it
        // exercises hits, misses, evictions and the s3fifo ghost path).
        opts.policies = KvPolicy::ALL.to_vec();
        opts.workload = KvWorkload::MIX;
        opts.threads = 2;
        opts.keys = 8_192;
        opts.ops = 20_000;
        opts.capacity = 2_048;
    }
    Ok(opts)
}

/// Cross-checks one load run's service counters against the thread-side
/// tallies — the same invariants the kv concurrency test pins, verified
/// on every bench run so a violation in the wild is loud.
fn kv_self_check(kv: &ShardedKv, result: &tla::kv::LoadResult) -> Result<(), String> {
    let total = kv.stats();
    let mut shard_sum = tla::kv::ShardStats::default();
    for s in kv.per_shard_stats() {
        shard_sum.merge(&s);
    }
    if total != shard_sum {
        return Err("global stats diverge from the per-shard sum".into());
    }
    let issued_gets: u64 = result.threads.iter().map(|t| t.gets).sum();
    let issued_puts: u64 = result.threads.iter().map(|t| t.puts).sum();
    if total.gets != issued_gets || total.puts != issued_puts {
        return Err(format!(
            "issued {issued_gets} gets / {issued_puts} puts but the service counted {} / {}",
            total.gets, total.puts
        ));
    }
    if total.gets != total.hits + total.misses {
        return Err("hits + misses != gets".into());
    }
    if kv.occupancy() as u64 != total.inserts - total.evictions - total.removes {
        return Err("occupancy != inserts - evictions - removes".into());
    }
    Ok(())
}

fn cmd_kv_bench(args: &[String]) -> ExitCode {
    let opts = match parse_kv_bench_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    eprintln!(
        "kv-bench: workload={} keys={} ops/thread={} threads={} capacity={} shards={} ways={}",
        opts.workload.name(),
        opts.keys,
        opts.ops,
        opts.threads,
        opts.capacity,
        opts.shards,
        opts.ways,
    );
    let mut table = Table::new(&[
        "policy",
        "threads",
        "ops",
        "wall s",
        "Mops/s",
        "hit %",
        "occupancy",
    ]);
    let mut reports = Vec::new();
    let mut consistent = true;
    for &policy in &opts.policies {
        let cfg = KvConfig {
            capacity: opts.capacity,
            shards: opts.shards,
            ways: opts.ways,
            policy,
            seed: opts.seed,
            window: opts.window,
        };
        let kv = match ShardedKv::new(cfg) {
            Ok(kv) => kv,
            Err(e) => {
                eprintln!("error: {policy}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let spec = LoadSpec {
            workload: opts.workload,
            keys: opts.keys,
            ops_per_thread: opts.ops,
            threads: opts.threads,
            put_permille: opts.put_permille,
            seed: opts.seed,
        };
        let result = run_load(&kv, &spec);
        if let Err(e) = kv_self_check(&kv, &result) {
            eprintln!("error: {policy}: counter consistency violated: {e}");
            consistent = false;
        }
        table.add_row(vec![
            policy.name().to_string(),
            opts.threads.to_string(),
            result.total_ops().to_string(),
            format!("{:.3}", result.elapsed.as_secs_f64()),
            format!("{:.2}", result.ops_per_sec() / 1e6),
            format!("{:.1}", result.hit_rate() * 100.0),
            kv.occupancy().to_string(),
        ]);
        reports.push(report_json(&kv, &spec, &result));
    }
    print!("{table}");
    if opts.smoke && consistent {
        println!("kv-bench smoke: all policies consistent");
    }
    if let Some(path) = &opts.json {
        let written = write_json(path, &JsonValue::array(reports).to_pretty());
        if !consistent {
            return ExitCode::FAILURE;
        }
        return written;
    }
    if consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The paper-flavoured default config of the simulation commands.
fn sim_base_cfg() -> SimConfig {
    SimConfig::scaled_down()
        .warmup(800_000)
        .instructions(300_000)
}

/// Rebuilds the [`SimConfig`] a checkpoint was warmed under from its meta
/// section, so `snapshot resume` needs no re-typed flags.
fn cfg_from_info(info: &tla::sim::CheckpointInfo) -> SimConfig {
    let cfg = SimConfig::scaled_down()
        .with_scale(info.scale)
        .warmup(info.warmup)
        .instructions(info.instructions)
        .seed(info.seed)
        .prefetch(info.prefetch);
    let core = tla::cpu::CoreModelConfig {
        latencies: info.latencies,
        ..*cfg.core_config()
    };
    cfg.core_model(core)
}

fn cmd_snapshot_save(opts: &Options) -> ExitCode {
    if opts.mix.is_empty() {
        eprintln!("snapshot save: --mix is required");
        return ExitCode::FAILURE;
    }
    let Some(path) = &opts.out else {
        eprintln!("snapshot save: --out <path> is required");
        return ExitCode::FAILURE;
    };
    if !opts.io.is_trivial() {
        eprintln!("snapshot save: checkpoints do not cover device I/O agents; drop --io");
        return ExitCode::FAILURE;
    }
    let spec = opts.policy.clone().unwrap_or_else(PolicySpec::baseline);
    let mut run = MixRun::new(&opts.cfg, &opts.mix).spec(&spec);
    if let Some(mb) = opts.llc_mb {
        run = run.llc_capacity_full_scale(mb * 1024 * 1024);
    }
    let checkpoint = match opts.window {
        Some(w) => run.warm_checkpoint_instrumented(Some(w)),
        None => run.warm_checkpoint(),
    };
    let info = match checkpoint.info() {
        Ok(info) => info,
        Err(e) => {
            eprintln!("error: just-written checkpoint is invalid: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = checkpoint.save(path) {
        eprintln!("error: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "checkpoint written to {path}: mix {} warmed {} instr/thread under {} \
         ({} global instr, {} bytes{})",
        info.mix_label(),
        info.warmup,
        info.warm_spec,
        info.total_instr,
        checkpoint.as_bytes().len(),
        if info.instrumented {
            ", instrumented"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}

fn cmd_snapshot_info(path: &str) -> ExitCode {
    let checkpoint = match Checkpoint::load(path) {
        Ok(ck) => ck,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let info = match checkpoint.info() {
        Ok(info) => info,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("checkpoint: {path} ({} bytes)", checkpoint.as_bytes().len());
    println!("  mix:          {}", info.mix_label());
    println!("  cores:        {}", info.apps.len());
    println!("  scale:        1/{}", info.scale);
    println!("  seed:         {:#x}", info.seed);
    println!("  warmup:       {} instr/thread", info.warmup);
    println!("  measure:      {} instr/thread", info.instructions);
    println!("  prefetch:     {}", info.prefetch);
    if let Some(bytes) = info.llc_capacity_full_scale {
        println!("  llc override: {bytes} bytes (full scale)");
    }
    println!("  warm policy:  {}", info.warm_spec);
    println!("  frozen at:    {} global instr", info.total_instr);
    match (info.instrumented, info.window) {
        (true, Some(w)) => println!("  telemetry:    instrumented, window {w}"),
        (true, None) => println!("  telemetry:    instrumented, no time series"),
        _ => println!("  telemetry:    none"),
    }
    ExitCode::SUCCESS
}

fn cmd_snapshot_resume(path: &str, opts: &Options) -> ExitCode {
    let checkpoint = match Checkpoint::load(path) {
        Ok(ck) => ck,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let info = match checkpoint.info() {
        Ok(info) => info,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = cfg_from_info(&info);
    let spec = opts.policy.clone().unwrap_or_else(PolicySpec::baseline);
    let build = || {
        let mut run = MixRun::new(&cfg, &info.apps).spec(&spec);
        if let Some(bytes) = info.llc_capacity_full_scale {
            // The builder re-applies the scale divisor, so feed it the
            // full-scale figure the checkpoint recorded.
            run = run.llc_capacity_full_scale(bytes);
        }
        run
    };
    if let Some(json_path) = &opts.json {
        let window = opts.window.or(info.window);
        match build().resume_report(&checkpoint, window) {
            Ok((result, report)) => {
                print_result(&spec.name, &result);
                write_json(json_path, &report.to_json_string())
            }
            Err(e) => {
                eprintln!("error: cannot resume {path}: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match build().resume(&checkpoint) {
            Ok(result) => {
                print_result(&spec.name, &result);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot resume {path}: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Lists a warm-cache directory without modifying it (the cache never
/// evicts; this command never writes).
fn cmd_snapshot_cache_info(dir: &str) -> ExitCode {
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("error: {dir}: not a directory");
        return ExitCode::FAILURE;
    }
    let cache = match WarmCache::open(dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("error: {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match cache.entries() {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if entries.is_empty() {
        println!("warm cache {dir}: empty");
        return ExitCode::SUCCESS;
    }
    let mut t = Table::new(&["file", "mix", "warmed under", "warmup", "seed", "size"]);
    let mut total = 0u64;
    for e in &entries {
        total += e.size_bytes;
        let file = e
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let row = match &e.info {
            Some(info) => vec![
                file,
                info.mix_label(),
                info.warm_spec.clone(),
                format!("{} instr", info.warmup),
                format!("{:#x}", info.seed),
                format!("{} B", e.size_bytes),
            ],
            None => vec![
                file,
                "(not a checkpoint)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{} B", e.size_bytes),
            ],
        };
        t.add_row(row);
    }
    print!("{t}");
    println!(
        "warm cache {dir}: {} image(s), {total} bytes total",
        entries.len()
    );
    ExitCode::SUCCESS
}

fn cmd_snapshot(rest: &[String]) -> ExitCode {
    let Some((sub, args)) = rest.split_first() else {
        eprintln!("error: snapshot needs a subcommand (save|info|resume|cache-info)");
        return usage();
    };
    match sub.as_str() {
        "save" => match parse_options(args, sim_base_cfg(), false) {
            Ok(opts) => cmd_snapshot_save(&opts),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "cache-info" => {
            let Some((dir, extra)) = args.split_first() else {
                eprintln!("error: snapshot cache-info needs a cache directory");
                return usage();
            };
            if !extra.is_empty() {
                eprintln!("error: snapshot cache-info takes no options");
                return usage();
            }
            cmd_snapshot_cache_info(dir)
        }
        "info" | "resume" => {
            let Some((path, args)) = args.split_first() else {
                eprintln!("error: snapshot {sub} needs a checkpoint path");
                return usage();
            };
            if sub == "info" {
                if !args.is_empty() {
                    eprintln!("error: snapshot info takes no options");
                    return usage();
                }
                return cmd_snapshot_info(path);
            }
            match parse_options(args, sim_base_cfg(), false) {
                Ok(opts) => cmd_snapshot_resume(path, &opts),
                Err(e) => {
                    eprintln!("error: {e}");
                    usage()
                }
            }
        }
        other => {
            eprintln!("error: unknown snapshot subcommand '{other}'");
            usage()
        }
    }
}

fn main() -> ExitCode {
    // Validate TLA_ENGINE before dispatching anything: a typo must be a
    // hard error up front, not a silent fall-through to the default
    // engine halfway into a run (the library would only panic once a
    // simulation actually starts).
    if let Err(e) = EngineMode::from_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    if cmd == "snapshot" {
        return cmd_snapshot(rest);
    }
    // kv-bench has its own option set (service knobs, not simulator ones).
    if cmd == "kv-bench" {
        return cmd_kv_bench(rest);
    }
    // `bench` wants long measured runs with no warm-up (throughput, not
    // policy fidelity); the simulation commands keep the paper-flavoured
    // warm-up defaults. Either way the flags can override.
    let base_cfg = if cmd == "bench" {
        SimConfig::scaled_down().warmup(0).instructions(1_000_000)
    } else {
        sim_base_cfg()
    };
    // `analyze` always instruments, so a bare --window steers the report's
    // time series without demanding --json; everywhere else it would be
    // silently dead.
    let opts = match parse_options(rest, base_cfg, cmd != "analyze") {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if opts.smoke && cmd != "io-sweep" {
        eprintln!("error: --smoke only applies to io-sweep (kv-bench has its own)");
        return usage();
    }
    match cmd.as_str() {
        "list" => cmd_list(),
        "table1" => cmd_table1(&opts),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "analyze" => cmd_analyze(&opts),
        "bench" => cmd_bench(&opts),
        "io-sweep" => cmd_io_sweep(&opts),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_options(args: &[String]) -> Result<Options, String> {
        super::parse_options(
            args,
            SimConfig::scaled_down()
                .warmup(800_000)
                .instructions(300_000),
            true,
        )
    }

    #[test]
    fn policy_names_parse() {
        for name in [
            "baseline",
            "tlh-il1",
            "tlh-dl1",
            "tlh-l1",
            "tlh-l2",
            "tlh-l1-l2",
            "eci",
            "qbs",
            "qbs-il1",
            "qbs-dl1",
            "qbs-l1",
            "qbs-l2",
            "non-inclusive",
            "exclusive",
            "vc32",
            "vc128",
            "vc256",
        ] {
            assert!(parse_policy(name).is_some(), "{name} must parse");
        }
        assert!(parse_policy("bogus").is_none());
        assert_eq!(parse_policy("inclusive").unwrap().name, "Inclusive");
        // The vc family is parameterized but bounded by the way-mask width.
        assert_eq!(parse_policy("vc32").unwrap().victim_cache, Some(32));
        assert_eq!(parse_policy("vc128").unwrap().name, "VC-128");
        assert!(parse_policy("vc0").is_none(), "empty victim cache");
        assert!(parse_policy("vc257").is_none(), "beyond MAX_WAYS");
        assert!(parse_policy("vcxyz").is_none());
    }

    #[test]
    fn mixes_parse_by_name_and_by_apps() {
        let m = parse_mix("MIX_10").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        let m = parse_mix("lib, sje").unwrap();
        assert_eq!(m, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        assert!(parse_mix("nope,sje").is_none());
    }

    #[test]
    fn options_parse_and_validate() {
        let args: Vec<String> = [
            "--mix",
            "MIX_00",
            "--policy",
            "qbs",
            "--scale",
            "4",
            "--measure",
            "1000",
            "--warmup",
            "2000",
            "--seed",
            "5",
            "--llc-mb",
            "4",
            "--no-prefetch",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.mix.len(), 2);
        assert_eq!(o.policy.as_ref().unwrap().name, "QBS");
        assert_eq!(o.cfg.scale(), 4);
        assert_eq!(o.cfg.instruction_quota(), 1000);
        assert_eq!(o.cfg.warmup_quota(), 2000);
        assert_eq!(o.cfg.seed_value(), 5);
        assert!(!o.cfg.prefetch_enabled());
        assert_eq!(o.llc_mb, Some(4));
    }

    #[test]
    fn bad_options_error() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v).unwrap_err()
        };
        assert!(bad(&["--mix"]).contains("--mix"));
        assert!(bad(&["--policy", "bogus"]).contains("unknown policy"));
        assert!(bad(&["--whatever"]).contains("unknown option"));
        assert!(bad(&["--mix", "xyz"]).contains("unknown mix"));
        assert!(bad(&["--jobs", "0"]).contains("positive"));
        assert!(bad(&["--jobs"]).contains("--jobs"));
    }

    #[test]
    fn io_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&["--io", "dma:2,nic:4:512", "--io-ways", "2"]).unwrap();
        assert_eq!(o.io.agents.len(), 2);
        assert_eq!(o.io.label(), "dma:2+nic:4:512/w2");
        assert_eq!(o.io.inject_ways, Some(2));
        assert!(!o.io.partition);
        let o = parse(&["--io", "dma", "--io-ways", "4", "--io-partition"]).unwrap();
        assert!(o.io.partition);
        // No --io at all stays trivial, so non-io output is byte-identical.
        let o = parse(&[]).unwrap();
        assert!(o.io.is_trivial());
        assert!(!o.smoke);
        let o = parse(&["--smoke"]).unwrap();
        assert!(o.smoke);
    }

    #[test]
    fn io_options_validate() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v).unwrap_err()
        };
        assert!(bad(&["--io", "tape:3"]).contains("--io"));
        assert!(bad(&["--io-ways", "0"]).contains("positive"));
        assert!(bad(&["--io-partition"]).contains("requires --io-ways"));
        assert!(bad(&["--io", "dma", "--warm-start"]).contains("warm-start"));
        assert!(bad(&["--io", "dma", "--warm-cache", "d"]).contains("warm"));
    }

    #[test]
    fn jobs_option_parses() {
        let args: Vec<String> = ["--jobs", "4"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.cfg.jobs_override(), Some(4));
        assert_eq!(o.cfg.effective_jobs(), 4);
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.cfg.jobs_override(), None);
    }

    #[test]
    fn shard_jobs_option_parses() {
        let args: Vec<String> = ["--shard-jobs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.cfg.shard_jobs_override(), Some(3));
        assert_eq!(o.cfg.effective_shard_jobs(), 3);
        // 0 opts into auto-detection rather than erroring.
        let args: Vec<String> = ["--shard-jobs", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.cfg.shard_jobs_override(), Some(0));
        assert!(o.cfg.effective_shard_jobs() >= 1);
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.cfg.shard_jobs_override(), None);
    }

    #[test]
    fn json_and_window_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[
            "--mix", "lib,sje", "--json", "out.json", "--window", "50000",
        ])
        .unwrap();
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.window, Some(50_000));
        let o = parse(&["--json", "out.json"]).unwrap();
        assert_eq!(o.window, None);
        let err = parse(&["--window", "50000"]).unwrap_err();
        assert!(err.contains("--json"));
        let err = parse(&["--json", "o", "--window", "0"]).unwrap_err();
        assert!(err.contains("positive"));
    }

    #[test]
    fn bench_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[
            "--baseline",
            "BENCH_pr3.json",
            "--gate",
            "5",
            "--target-ms",
            "100",
        ])
        .unwrap();
        assert_eq!(o.baseline.as_deref(), Some("BENCH_pr3.json"));
        assert_eq!(o.gate_pct, 5.0);
        assert_eq!(o.target_ms, 100);
        let o = parse(&[]).unwrap();
        assert_eq!(o.baseline, None);
        assert_eq!(o.gate_pct, 10.0);
        assert_eq!(o.target_ms, 800);
        assert!(parse(&["--gate", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--gate", "nan"]).unwrap_err().contains("positive"));
        assert!(parse(&["--target-ms", "0"])
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn bench_matrix_shape() {
        let matrix = bench_matrix();
        assert_eq!(
            matrix.len(),
            26,
            "4 policies x 4 core counts + the probe-heavy vc128 entry \
             + 2 io injection entries + 3 parallel-engine entries + 4 kv entries"
        );
        // Names are unique (the gate matches entries by name).
        let mut names: Vec<&str> = matrix.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
        // The probe-heavy entry runs a 128-entry victim cache on one core.
        assert!(matrix.iter().any(|(n, job)| n == "1core-vc128/vc128"
            && matches!(job, BenchJob::Sim { apps, spec, .. }
                if apps.len() == 1 && spec.victim_cache == Some(128))));
        // The io entries time the device-injection path: the same 2-core
        // mix with a leaky-DMA agent, unlimited and way-limited.
        assert!(matrix.iter().any(|(n, job)| n == "io/2core-dma/baseline"
            && matches!(job, BenchJob::Sim { io, .. }
                if io.agents.len() == 1 && io.inject_ways.is_none())));
        assert!(matrix.iter().any(|(n, job)| n == "io/2core-dma-w2/baseline"
            && matches!(job, BenchJob::Sim { io, .. }
                if io.agents.len() == 1 && io.inject_ways == Some(2))));
        // Every non-io sim entry stays device-free, so bench numbers for
        // the classic entries are comparable against pre-io baselines.
        for (n, job) in &matrix {
            if let BenchJob::Sim { io, .. } = job {
                assert_eq!(!io.is_trivial(), n.contains("io/"), "{n}");
            }
        }
        // The parallel-engine entries pin the engine and its worker count
        // (and only they do — the classic entries stay engine-default so
        // their numbers are comparable against pre-parallel baselines).
        for (n, job) in &matrix {
            if let BenchJob::Sim { .. } = job {
                assert_eq!(job.engine().is_some(), n.starts_with("par/"), "{n}");
            }
        }
        assert!(matrix
            .iter()
            .any(|(n, job)| n == "par/4core-llcmiss/baseline"
                && job.cores() == 4
                && job.engine() == Some((EngineMode::Parallel, 4))));
        assert!(matrix.iter().any(|(n, job)| n == "par/8core/baseline"
            && job.cores() == 8
            && job.engine() == Some((EngineMode::Parallel, 8))));
        assert!(matrix
            .iter()
            .any(|(n, job)| n == "par/io/2core-dma/baseline"
                && matches!(job, BenchJob::Sim { io, .. } if io.agents.len() == 1)
                && job.engine() == Some((EngineMode::Parallel, 2))));
        // The headline LLC-miss-heavy workload is present at 4 cores.
        assert!(matrix
            .iter()
            .any(|(n, job)| n == "4core-llcmiss/baseline" && job.cores() == 4));
        // The 8-core scaling point rides along at every policy.
        assert_eq!(
            matrix
                .iter()
                .filter(|(n, job)| n.starts_with("8core/")
                    && matches!(job, BenchJob::Sim { apps, .. } if apps.len() == 8))
                .count(),
            4
        );
        // The gate's calibration entry is part of the matrix.
        assert!(matrix.iter().any(|(n, _)| n == GATE_CALIBRATION_ENTRY));
        // The kv service entries: zipf thread scaling under Clock plus the
        // scan-burst mix under S3-FIFO, all gated by calibration ratio.
        for (name, threads) in [
            ("kv/zipf-1t", 1usize),
            ("kv/zipf-4t", 4),
            ("kv/zipf-8t", 8),
            ("kv/mix-8t-s3fifo", 8),
        ] {
            assert!(
                matrix.iter().any(|(n, job)| n == name
                    && matches!(job, BenchJob::Kv { threads: t, .. } if *t == threads)),
                "{name} missing from the matrix"
            );
        }
        // Every kv entry issues a deterministic op count independent of the
        // sim config (the calibration-ratio gate depends on it).
        let cfg = SimConfig::scaled_down();
        for (n, job) in &matrix {
            if let BenchJob::Kv { threads, .. } = job {
                assert_eq!(
                    job.accesses(&cfg, None).0,
                    KV_BENCH_OPS_PER_THREAD * *threads as u64,
                    "{n}"
                );
            }
        }
    }

    #[test]
    fn kv_bench_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_kv_bench_options(&v)
        };
        let o = parse(&[]).unwrap();
        assert_eq!(o.policies, vec![KvPolicy::Clock]);
        assert_eq!(o.workload, KvWorkload::ZIPF);
        assert_eq!(o.threads, 8);
        assert!(!o.smoke);
        let o = parse(&[
            "--policy",
            "s3fifo",
            "--workload",
            "mix:100:50",
            "--threads",
            "4",
            "--keys",
            "1000",
            "--ops",
            "500",
            "--capacity",
            "256",
            "--shards",
            "2",
            "--ways",
            "4",
            "--put-permille",
            "200",
            "--seed",
            "9",
            "--json",
            "kv.json",
        ])
        .unwrap();
        assert_eq!(o.policies, vec![KvPolicy::S3Fifo]);
        assert_eq!(
            o.workload,
            KvWorkload::Mix {
                period: 100,
                burst: 50,
                s: 1.0
            }
        );
        assert_eq!((o.threads, o.keys, o.ops), (4, 1000, 500));
        assert_eq!((o.capacity, o.shards, o.ways), (256, 2, 4));
        assert_eq!((o.put_permille, o.seed), (200, 9));
        assert_eq!(o.json.as_deref(), Some("kv.json"));
        // --json opts into the series with the default window.
        assert_eq!(o.window, Some(KV_BENCH_WINDOW));
        let o = parse(&["--json", "kv.json", "--window", "500"]).unwrap();
        assert_eq!(o.window, Some(500));
        // Without --json there is no report to carry the series.
        let o = parse(&[]).unwrap();
        assert_eq!(o.window, None);
        assert!(parse(&["--window", "500"]).is_err());
        assert!(parse(&["--json", "kv.json", "--window", "0"]).is_err());
        let o = parse(&["--policy", "all"]).unwrap();
        assert_eq!(o.policies.len(), 4);
        // Smoke pins a small fixed sweep whatever else was asked for.
        let o = parse(&["--smoke", "--threads", "64"]).unwrap();
        assert!(o.smoke);
        assert_eq!(o.threads, 2);
        assert_eq!(o.policies.len(), 4);
        assert!(parse(&["--policy", "arc"]).is_err());
        assert!(parse(&["--workload", "nope"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--put-permille", "1001"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn kv_self_check_accepts_real_runs_all_policies() {
        for policy in KvPolicy::ALL {
            let kv = ShardedKv::new(KvConfig::new(512, policy)).unwrap();
            let spec = LoadSpec::new(2_048, 3_000, 2);
            let result = run_load(&kv, &spec);
            kv_self_check(&kv, &result).unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn bench_gate_compares_ratios_not_absolutes() {
        let dir = std::env::temp_dir().join(format!("tla-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        // Baseline machine: 8core/qbs ran at half the calibration entry's
        // throughput (ratio 0.5), at 0.5 Macc/s absolute.
        let base_entry = |name: &str, aps: f64, ratio: Option<f64>| {
            let mut fields = vec![
                ("name", JsonValue::Str(name.into())),
                ("accesses_per_sec", JsonValue::Num(aps)),
            ];
            if let Some(r) = ratio {
                fields.push(("calibration_ratio", JsonValue::Num(r)));
            }
            JsonValue::object(fields)
        };
        let baseline = JsonValue::object([(
            "entries",
            JsonValue::array([base_entry("8core/qbs", 500_000.0, Some(0.5))]),
        )]);
        std::fs::write(&path, baseline.to_pretty()).unwrap();
        let entry = |name: &str, aps: f64, ratio: f64| BenchEntry {
            name: name.into(),
            cores: 1,
            accesses: 1,
            iters: 1,
            wall_s: 1.0,
            accesses_per_sec: aps,
            accesses_per_sec_mean: aps,
            calibration_ratio: ratio,
            kernel: "scalar4",
            engine: None,
            warmed_from_image: false,
        };
        let p = path.to_str().unwrap();
        // Same ratio passes, whatever the absolute numbers did: a 3x faster
        // and a 5x slower machine both keep ratio 0.5 (the portability
        // property the absolute gate lacked).
        for aps in [500_000.0, 1_500_000.0, 100_000.0] {
            assert!(bench_gate(&[entry("8core/qbs", aps, 0.5)], p, 10.0).is_ok());
        }
        // The entry slipping relative to calibration fails even though its
        // absolute throughput beats the baseline's.
        let err = bench_gate(&[entry("8core/qbs", 900_000.0, 0.3)], p, 10.0).unwrap_err();
        assert!(err.contains("8core/qbs"), "{err}");
        // Within the gate margin: ratio 0.46 vs 0.5 is an -8% slip.
        assert!(bench_gate(&[entry("8core/qbs", 460_000.0, 0.46)], p, 10.0).is_ok());
        // A big relative improvement still passes (one-sided gate).
        assert!(bench_gate(&[entry("8core/qbs", 900_000.0, 0.9)], p, 10.0).is_ok());
        // The calibration entry itself is never gated (its ratio is ~1 by
        // construction and it has no baseline counterpart here).
        assert!(bench_gate(&[entry(GATE_CALIBRATION_ENTRY, 1.0, 1.0)], p, 10.0).is_ok());
        // Entries unknown to the baseline are skipped, not failed.
        assert!(bench_gate(&[entry("no-such-entry", 1.0, 1.0)], p, 10.0).is_ok());
        // A pre-ratio baseline (no calibration_ratio field) demands a
        // re-bless instead of gating on garbage.
        let old = dir.join("old.json");
        let doc = JsonValue::object([(
            "entries",
            JsonValue::array([base_entry("8core/qbs", 500_000.0, None)]),
        )]);
        std::fs::write(&old, doc.to_pretty()).unwrap();
        let err =
            bench_gate(&[entry("8core/qbs", 1.0, 0.5)], old.to_str().unwrap(), 10.0).unwrap_err();
        assert!(err.contains("calibration_ratio"), "{err}");
        // Malformed baseline reports an error.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{}").unwrap();
        assert!(bench_gate(&[entry("8core/qbs", 1.0, 0.5)], bad.to_str().unwrap(), 10.0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sample_every_option_parses() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_options(&v)
        };
        let o = parse(&[]).unwrap();
        assert_eq!(o.sample_every, DEFAULT_SAMPLE_EVERY);
        let o = parse(&["--sample-every", "8"]).unwrap();
        assert_eq!(o.sample_every, 8);
        assert!(parse(&["--sample-every", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--sample-every"])
            .unwrap_err()
            .contains("sample-every"));
    }

    #[test]
    fn gap_to_opt_is_relative_and_finite() {
        assert_eq!(gap_to_opt(100, 100), 0.0);
        assert!((gap_to_opt(150, 100) - 0.5).abs() < 1e-12);
        assert!((gap_to_opt(50, 100) + 0.5).abs() < 1e-12);
        // Zero-miss oracle: finite (absolute excess), never NaN/inf.
        assert_eq!(gap_to_opt(7, 0), 7.0);
        assert_eq!(gap_to_opt(0, 0), 0.0);
    }

    #[test]
    fn bench_gate_validates_baseline_schema() {
        let dir = std::env::temp_dir().join(format!("tla-gate-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let entry = BenchEntry {
            name: "8core/qbs".into(),
            cores: 1,
            accesses: 1,
            iters: 1,
            wall_s: 1.0,
            accesses_per_sec: 1.0,
            accesses_per_sec_mean: 1.0,
            calibration_ratio: 0.5,
            kernel: "scalar4",
            engine: None,
            warmed_from_image: false,
        };
        let write = |file: &str, schema: Option<&str>| {
            let mut fields = Vec::new();
            if let Some(s) = schema {
                fields.push(("schema", JsonValue::Str(s.into())));
            }
            fields.push((
                "entries",
                JsonValue::array([JsonValue::object([
                    ("name", JsonValue::Str("8core/qbs".into())),
                    ("calibration_ratio", JsonValue::Num(0.5)),
                ])]),
            ));
            let path = dir.join(file);
            std::fs::write(&path, JsonValue::object(fields).to_pretty()).unwrap();
            path
        };
        // Both tagged generations gate cleanly (BENCH_pr5.json is v2).
        for (file, schema) in [
            ("v2.json", Some("tla-bench-report-v2")),
            ("v3.json", Some("tla-bench-report-v3")),
            ("untagged.json", None),
        ] {
            let p = write(file, schema);
            assert!(
                bench_gate(std::slice::from_ref(&entry), p.to_str().unwrap(), 10.0).is_ok(),
                "{file} must be accepted"
            );
        }
        // An unknown tag is refused with the list of readable schemas.
        let p = write("v9.json", Some("tla-bench-report-v9"));
        let err = bench_gate(std::slice::from_ref(&entry), p.to_str().unwrap(), 10.0).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(err.contains("tla-bench-report-v3"), "{err}");
        // The committed PR 5 baseline itself stays readable by this binary.
        if std::path::Path::new("BENCH_pr5.json").exists() {
            assert!(
                bench_gate(std::slice::from_ref(&entry), "BENCH_pr5.json", 1e9).is_ok(),
                "BENCH_pr5.json must remain a valid gate baseline"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_options_parse() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            super::parse_options(&v, sim_base_cfg(), false)
        };
        let o = parse(&[
            "--mix",
            "lib,sje",
            "--out",
            "warm.tlas",
            "--window",
            "50000",
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("warm.tlas"));
        // Without the json requirement, a bare --window instruments the
        // checkpoint.
        assert_eq!(o.window, Some(50_000));
        assert!(!o.warm_start);
        let o = parse(&["--mix", "lib,sje", "--warm-start"]).unwrap();
        assert!(o.warm_start);
        assert!(o.warm_cache.is_none());
        // --warm-cache carries the directory and opts into warm-start.
        let o = parse(&["--mix", "lib,sje", "--warm-cache", "/tmp/warm"]).unwrap();
        assert_eq!(o.warm_cache.as_deref(), Some("/tmp/warm"));
        assert!(o.warm_start, "--warm-cache implies --warm-start");
        assert!(parse(&["--warm-cache"]).unwrap_err().contains("warm-cache"));
    }
}
