//! # tla — Temporal Locality Aware cache management
//!
//! A faithful reproduction of *"Achieving Non-Inclusive Cache Performance
//! with Inclusive Caches: Temporal Locality Aware (TLA) Cache Management
//! Policies"* (Jaleel, Borch, Bhandaru, Steely, Emer — MICRO 2010), built as
//! a complete multi-core cache-hierarchy simulator in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — addresses, core ids, access kinds ([`tla_types`]).
//! * [`cache`] — set-associative caches, replacement policies, MSHRs,
//!   victim cache, stream prefetcher ([`tla_cache`]).
//! * [`core`] — the paper's contribution: inclusive / non-inclusive /
//!   exclusive hierarchies and the TLH / ECI / QBS policies ([`tla_core`]).
//! * [`cpu`] — the trace-driven out-of-order core timing model
//!   ([`tla_cpu`]).
//! * [`workloads`] — synthetic SPEC CPU2006-like benchmarks and the paper's
//!   workload mixes ([`tla_workloads`]).
//! * [`io`] — DDIO-style device I/O agents (NIC rings, leaky-DMA streams)
//!   that inject directly into the LLC, with injection-way limit and
//!   way-partitioning configuration ([`tla_io`]).
//! * [`sim`] — the CMP simulator, metrics and experiment runner
//!   ([`tla_sim`]).
//! * [`telemetry`] — event sinks, windowed time series and machine-readable
//!   run reports ([`tla_telemetry`]).
//! * [`pool`] — the dependency-free scoped thread pool behind the parallel
//!   experiment runner ([`tla_pool`]).
//! * [`bench`] — the offline timing harness shared by the figure benches
//!   and `tla-cli bench` ([`tla_bench`]).
//! * [`kv`] — the lock-striped sharded concurrent cache service built on
//!   the same set-associative core, with its load generator and
//!   `tla-cli kv-bench` ([`tla_kv`]).
//!
//! # Quickstart
//!
//! ```
//! use tla::sim::{MixRun, SimConfig};
//! use tla::core::TlaPolicy;
//! use tla::workloads::SpecApp;
//!
//! // Run a tiny 2-core mix under the inclusive baseline and under QBS.
//! let cfg = SimConfig::scaled_down().instructions(20_000);
//! let mix = [SpecApp::Sjeng, SpecApp::Libquantum];
//! let base = MixRun::new(&cfg, &mix).policy(TlaPolicy::baseline()).run();
//! let qbs = MixRun::new(&cfg, &mix).policy(TlaPolicy::qbs()).run();
//! // QBS never loses throughput on this CCF+LLCT mix.
//! assert!(qbs.throughput() >= base.throughput() * 0.95);
//! ```

pub use tla_bench as bench;
pub use tla_cache as cache;
pub use tla_core as core;
pub use tla_cpu as cpu;
pub use tla_io as io;
pub use tla_kv as kv;
pub use tla_pool as pool;
pub use tla_rng as rng;
pub use tla_sim as sim;
pub use tla_telemetry as telemetry;
pub use tla_types as types;
pub use tla_workloads as workloads;
