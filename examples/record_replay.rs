//! Record a workload trace to a file and replay it bit-identically —
//! the stand-in for CMP$im's Pin trace files.
//!
//! Run with: `cargo run --release --example record_replay`

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use tla::core::{CacheHierarchy, HierarchyConfig};
use tla::types::{AccessKind, CoreId};
use tla::workloads::{RecordedTrace, SpecApp, TraceSource};

fn main() -> Result<(), Box<dyn Error>> {
    // Capture 100k instructions of mcf's access stream.
    let mut live = SpecApp::Mcf.trace(8, 0, 42);
    let recorded = RecordedTrace::record(&mut live, 100_000);
    let mems = recorded
        .instructions()
        .iter()
        .filter(|i| i.mem.is_some())
        .count();
    println!(
        "recorded {} instructions ({} memory references) of {}",
        recorded.len(),
        mems,
        SpecApp::Mcf
    );

    // Round-trip through the binary trace format.
    let path = std::env::temp_dir().join("mcf.tlatrace");
    recorded.write_to(BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    let mut replay = RecordedTrace::read_from(BufReader::new(File::open(&path)?))?;
    println!(
        "trace file: {} ({} bytes, {:.1} B/instr)",
        path.display(),
        bytes,
        bytes as f64 / recorded.len() as f64
    );

    // Drive a hierarchy from the replayed trace and from a fresh live
    // generator; the miss counts must match exactly.
    let run = |trace: &mut dyn TraceSource| {
        let cfg = HierarchyConfig::scaled(1, 8);
        let mut h = CacheHierarchy::new(&cfg);
        let core = CoreId::new(0);
        for _ in 0..100_000 {
            let i = trace.next_instruction();
            if let Some(m) = i.mem {
                h.access(core, m.addr, m.kind);
            }
            let _ = h.access(core, i.code_line, AccessKind::IFetch);
        }
        h.per_core_stats(core).llc_misses
    };
    let mut fresh = SpecApp::Mcf.trace(8, 0, 42);
    let live_misses = run(&mut fresh);
    let replay_misses = run(&mut replay);
    println!("LLC misses — live: {live_misses}, replayed: {replay_misses}");
    assert_eq!(live_misses, replay_misses, "replay must be bit-identical");
    println!("replay is bit-identical to the live generator");

    std::fs::remove_file(&path)?;
    Ok(())
}
