//! The paper's Figure 3 walkthrough, executable.
//!
//! A two-entry L1 and a four-entry inclusive LLC run the reference
//! pattern `a, b, a, c, a, d, a, e, a, f, a`: the repeated hits on `a`
//! are serviced by the L1 and therefore invisible to the LLC, whose copy
//! of `a` decays to LRU and gets evicted — back-invalidating the L1's hot
//! copy (an *inclusion victim*). Each TLA policy prevents it differently.
//!
//! Run with: `cargo run --release --example inclusion_victims`

use tla::core::{CacheHierarchy, HierarchyConfig, InclusionPolicy, TlaPolicy};
use tla::types::{AccessKind, CoreId, DataSource, LineAddr};

const PATTERN: [u64; 11] = [1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1];

fn name(line: u64) -> char {
    (b'a' + (line - 1) as u8) as char
}

fn run(label: &str, cfg: HierarchyConfig) {
    let mut h = CacheHierarchy::new(&cfg);
    let core = CoreId::new(0);
    print!("{label:24}");
    let mut memory_refs = 0;
    for &x in &PATTERN {
        let src = h.access(core, LineAddr::new(x), AccessKind::Load);
        let mark = match src {
            DataSource::L1 => ' ',
            DataSource::L2 => '+',
            DataSource::Llc => '*',
            DataSource::Memory => '!',
        };
        if src == DataSource::Memory {
            memory_refs += 1;
        }
        print!("{}{mark} ", name(x));
    }
    let s = h.per_core_stats(core);
    println!(
        "| mem {memory_refs:2}  inclusion victims {}",
        s.inclusion_victims()
    );
}

fn main() {
    println!("reference pattern (Fig. 3):  a b a c a d a e a f a");
    println!("legend: '!' memory miss, '*' LLC hit, '+' L2 hit, ' ' L1 hit\n");

    let tiny = HierarchyConfig::tiny_fig3;
    run("(a) baseline inclusive", tiny());
    run("(b) TLH", tiny().tla(TlaPolicy::tlh_l1()));
    run("(c) ECI", tiny().tla(TlaPolicy::eci()));
    run("(d) QBS", tiny().tla(TlaPolicy::qbs()));
    run(
        "    non-inclusive",
        tiny().inclusion_policy(InclusionPolicy::NonInclusive),
    );

    println!();
    println!("baseline: the LLC evicts 'a' while it is hot in the L1 — the last");
    println!("references to 'a' go to memory. TLH keeps the LLC's replacement");
    println!("state fresh with hints; ECI invalidates 'a' early and re-derives its");
    println!("locality from the prompt re-request (an LLC hit, '*'); QBS queries");
    println!("the core and refuses to evict resident lines — matching the");
    println!("non-inclusive hierarchy without giving up inclusion.");
}
