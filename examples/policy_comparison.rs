//! Compare every TLA policy and hierarchy organization over the paper's
//! Table II workload mixes (a compact version of Figures 5-7 and 9a).
//!
//! Run with: `cargo run --release --example policy_comparison`
//! (about half a minute; pass a smaller per-thread instruction count as
//! the first argument to go faster).

use tla::sim::{run_mix_suite, PolicySpec, SimConfig, Table};
use tla::types::stats;
use tla::workloads::table2_mixes;

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let cfg = SimConfig::scaled_down()
        .warmup(measure * 3)
        .instructions(measure);

    let mixes = table2_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];

    eprintln!(
        "running {} policies x {} mixes ({} instr/thread measured)...",
        specs.len(),
        mixes.len(),
        measure
    );
    let suites = run_mix_suite(&cfg, &mixes, &specs, None);

    let mut headers = vec!["mix (categories)"];
    for s in &suites[1..] {
        headers.push(s.spec.name.as_str());
    }
    let mut t = Table::new(&headers);
    for (i, mix) in mixes.iter().enumerate() {
        let mut row = vec![format!("{} ({})", mix.name, mix.category_label())];
        for s in &suites[1..] {
            row.push(format!(
                "{:.3}",
                s.runs[i].throughput() / suites[0].runs[i].throughput()
            ));
        }
        t.add_row(row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for s in &suites[1..] {
        row.push(format!(
            "{:.3}",
            stats::geomean(s.normalized_throughput(&suites[0]).into_iter()).unwrap()
        ));
    }
    t.add_row(row);

    println!("\nthroughput normalized to the inclusive baseline\n{t}");
    println!("mixes pairing a CCF app with an LLC-thrashing/fitting app benefit;");
    println!("homogeneous mixes (MIX_01, MIX_03, MIX_06) see no inclusion victims");
    println!("and no benefit, exactly as the paper's Figure 5 reports.");
}
