//! Quickstart: simulate one 2-core workload mix under the inclusive
//! baseline and under Query Based Selection, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use tla::core::TlaPolicy;
use tla::sim::{MixRun, SimConfig};
use tla::workloads::SpecApp;

fn main() {
    // 1/8-scale caches (same capacity ratios as the paper's §IV-A
    // hierarchy), 200k warm-up + 200k measured instructions per thread.
    let cfg = SimConfig::scaled_down()
        .warmup(800_000)
        .instructions(300_000);

    // MIX_10 from the paper's Table II: a streaming LLC-thrasher
    // (libquantum) beside a core-cache-fitting chess engine (sjeng).
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];

    println!("mix: {} + {}\n", mix[0], mix[1]);

    let mut baseline_throughput = 0.0;
    for policy in [TlaPolicy::baseline(), TlaPolicy::eci(), TlaPolicy::qbs()] {
        let result = MixRun::new(&cfg, &mix).policy(policy).run();
        let throughput = result.throughput();
        if policy == TlaPolicy::baseline() {
            baseline_throughput = throughput;
        }
        println!("policy {:10}", policy.label());
        for t in &result.threads {
            println!(
                "  {}: IPC {:.3}, LLC MPKI {:.2}, inclusion victims {}",
                t.app,
                t.ipc(),
                t.llc_mpki(),
                t.stats.inclusion_victims(),
            );
        }
        println!(
            "  throughput {:.3} ({:+.1}% vs baseline)\n",
            throughput,
            (throughput / baseline_throughput - 1.0) * 100.0
        );
    }

    println!("sjeng's hot lines live in its core caches, invisible to the LLC;");
    println!("libquantum's streaming decays them to eviction candidates. QBS asks");
    println!("the cores before evicting and rescues them — recovering sjeng's IPC");
    println!("without giving up the inclusive LLC's snoop-filter benefits.");
}
