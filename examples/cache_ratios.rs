//! Sweep the core-cache:LLC capacity ratio (the paper's Figures 2 and 10
//! in miniature): the smaller the LLC relative to the core caches, the
//! worse plain inclusion gets and the more QBS recovers.
//!
//! Run with: `cargo run --release --example cache_ratios`

use tla::sim::{run_mix_suite, PolicySpec, SimConfig, Table};
use tla::types::stats;
use tla::workloads::table2_mixes;

fn main() {
    let cfg = SimConfig::scaled_down()
        .warmup(900_000)
        .instructions(300_000);
    let mixes = table2_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];

    let mut t = Table::new(&["L2:LLC ratio", "QBS", "Non-Inclusive", "Exclusive"]);
    for llc_mb in [1usize, 2, 4, 8] {
        eprintln!("LLC {llc_mb} MB (full-scale)...");
        let suites = run_mix_suite(&cfg, &mixes, &specs, Some(llc_mb * 1024 * 1024));
        let mut row = vec![format!("1:{}", 2 * llc_mb)];
        for s in &suites[1..] {
            row.push(format!(
                "{:.3}",
                stats::geomean(s.normalized_throughput(&suites[0]).into_iter()).unwrap()
            ));
        }
        t.add_row(row);
    }

    println!("\ngeomean throughput vs inclusive baseline, per LLC size\n{t}");
    println!("at 1:8 and beyond the hierarchies converge (inclusion is cheap when");
    println!("the LLC dwarfs the core caches); at 1:2 inclusion victims bite and");
    println!("QBS recovers most of the non-inclusive advantage — the paper's");
    println!("motivation for running QBS on small-ratio designs.");
}
