//! The golden pin again, with SIMD dispatch disabled.
//!
//! Runs in its own process (integration tests are separate binaries), sets
//! `TLA_FORCE_SCALAR` before the first probe-kernel use, and demands the
//! exact bytes of `tests/golden/compare_pr3.json` — the same file the
//! default-dispatch golden test pins. Together the two tests prove the
//! AVX2 and portable kernels drive bit-identical simulations: if either
//! kernel returned a different hit way anywhere in the matrix, one of the
//! two processes would drift from the shared golden.

use std::path::Path;

use tla::sim::{run_policy_reports, PolicySpec, SimConfig};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

#[test]
fn scalar_kernel_matches_committed_golden() {
    // Before any cache is built: kernel selection is per-process sticky.
    std::env::set_var("TLA_FORCE_SCALAR", "1");
    assert_eq!(
        tla::cache::kernel_name(),
        "scalar4",
        "TLA_FORCE_SCALAR must pin the portable kernel"
    );

    let cfg = SimConfig::scaled_down().instructions(25_000).seed(42);
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    let results = run_policy_reports(&cfg, &mix, &specs, None, Some(5_000));
    let doc = JsonValue::array(
        results
            .iter()
            .map(|(_, rep)| rep.as_ref().expect("window requested").to_json()),
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_pr3.json");
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run TLA_BLESS=1 cargo test --test golden");
    assert_eq!(
        doc.to_pretty(),
        golden,
        "scalar-kernel compare --json output drifted from the golden the \
         SIMD path pins — the two dispatch paths no longer agree"
    );
}
