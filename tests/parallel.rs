//! Serial vs parallel determinism of the batch experiment runner.
//!
//! Every `MixRun` owns its whole simulated hierarchy and derives all
//! randomness from the configured seed, so fanning a suite out over the
//! `tla-pool` workers must change nothing but wall-clock time. These
//! tests pin that guarantee end to end: identical rows, identical
//! counters, byte-identical JSON reports for `--jobs 1` vs `--jobs 4`.

use tla::sim::{
    mpki_table, run_alone_many, run_mix_suite, run_policy_reports, PolicySpec, SimConfig,
};
use tla::telemetry::json::JsonValue;
use tla::workloads::{table2_mixes, SpecApp};

fn quick() -> SimConfig {
    SimConfig::scaled_down().instructions(10_000)
}

#[test]
fn mpki_table_parallel_matches_serial_row_for_row() {
    let serial = mpki_table(&quick().jobs(1));
    let parallel = mpki_table(&quick().jobs(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.app, p.app);
        // Bit-identical, not merely close: the runs are the same runs.
        assert_eq!(s.l1_mpki.to_bits(), p.l1_mpki.to_bits(), "{}", s.app);
        assert_eq!(s.l2_mpki.to_bits(), p.l2_mpki.to_bits(), "{}", s.app);
        assert_eq!(s.llc_mpki.to_bits(), p.llc_mpki.to_bits(), "{}", s.app);
    }
}

#[test]
fn mix_suite_parallel_matches_serial() {
    let mixes = &table2_mixes()[..3];
    let specs = [PolicySpec::baseline(), PolicySpec::qbs(), PolicySpec::eci()];
    let serial = run_mix_suite(&quick().jobs(1), mixes, &specs, None);
    let parallel = run_mix_suite(&quick().jobs(4), mixes, &specs, None);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec.name, p.spec.name);
        assert_eq!(s.runs.len(), p.runs.len());
        for (sr, pr) in s.runs.iter().zip(&p.runs) {
            assert_eq!(sr.global, pr.global);
            for (st, pt) in sr.threads.iter().zip(&pr.threads) {
                assert_eq!(st.stats, pt.stats);
                assert_eq!(st.cycles, pt.cycles);
                assert_eq!(st.instructions, pt.instructions);
            }
        }
    }
}

#[test]
fn run_alone_many_parallel_matches_serial() {
    let apps: Vec<SpecApp> = SpecApp::ALL[..6].to_vec();
    let serial = run_alone_many(&quick().jobs(1), &apps);
    let parallel = run_alone_many(&quick().jobs(4), &apps);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.app, p.app);
        assert_eq!(s.stats, p.stats);
        assert_eq!(s.cycles, p.cycles);
    }
}

#[test]
fn compare_reports_are_byte_identical_across_job_counts() {
    // The exact artifact `tla-cli compare --json` writes, at both job
    // counts: serialize each report list and demand byte equality.
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
    ];
    let render = |jobs: usize| {
        let results = run_policy_reports(&quick().jobs(jobs), &mix, &specs, None, Some(2_500));
        let doc = JsonValue::array(
            results
                .iter()
                .map(|(_, rep)| rep.as_ref().expect("window requested").to_json()),
        );
        doc.to_pretty()
    };
    let serial = render(1);
    let parallel = render(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "serial and parallel JSON diverged");
}
