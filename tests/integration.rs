//! Cross-crate integration tests: full simulator runs exercising every
//! layer (workload generation -> core timing -> hierarchy -> metrics).
//!
//! Quotas are kept small so the suite stays fast in debug builds; the
//! steady-state performance claims live in the bench harness.

use tla::cache::Policy;
use tla::core::{InclusionPolicy, TlaPolicy};
use tla::sim::{
    mpki_table, run_alone, run_alone_many, run_mix_suite, MixRun, PolicySpec, SimConfig,
};
use tla::types::stats;
use tla::workloads::{all_two_core_mixes, random_mixes, table2_mixes, Category, SpecApp};

fn quick() -> SimConfig {
    SimConfig::scaled_down().warmup(40_000).instructions(40_000)
}

#[test]
fn full_run_is_deterministic_across_processes_shape() {
    let cfg = quick();
    let a = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Libquantum]).run();
    let b = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Libquantum]).run();
    assert_eq!(a.threads[0].cycles, b.threads[0].cycles);
    assert_eq!(a.threads[1].cycles, b.threads[1].cycles);
    assert_eq!(a.global, b.global);
}

#[test]
fn different_seeds_change_timing_but_not_structure() {
    let a = MixRun::new(&quick(), &[SpecApp::Gobmk]).run();
    let b = MixRun::new(&quick().seed(1234), &[SpecApp::Gobmk]).run();
    assert_ne!(a.threads[0].cycles, b.threads[0].cycles);
    // Same workload statistics regime though: MPKIs within 2x.
    let (ma, mb) = (a.threads[0].llc_mpki(), b.threads[0].llc_mpki());
    assert!(ma < 2.0 * mb + 1.0 && mb < 2.0 * ma + 1.0, "{ma} vs {mb}");
}

#[test]
fn ccf_apps_have_high_isolated_ipc() {
    for app in SpecApp::ALL {
        let t = run_alone(&quick(), app);
        match app.category() {
            Category::CoreCacheFitting => {
                assert!(t.ipc() > 1.5, "{app}: CCF IPC {}", t.ipc())
            }
            Category::LlcThrashing => {
                assert!(t.ipc() < 3.0, "{app}: LLCT IPC {}", t.ipc())
            }
            Category::LlcFitting => {}
        }
    }
}

#[test]
fn mpki_table_is_monotone_down_the_hierarchy() {
    let rows = mpki_table(&quick());
    for r in rows {
        assert!(r.l1_mpki >= r.l2_mpki - 1e-9);
        assert!(r.l2_mpki >= r.llc_mpki - 1e-9);
    }
}

#[test]
fn qbs_never_collapses_relative_to_baseline() {
    // Over the showcase mixes, QBS must stay within noise of the baseline
    // or above it (the paper's worst case over 105 mixes is ~-1.6% for
    // ECI; QBS has no mechanism to lose much).
    let cfg = quick();
    let mixes = table2_mixes();
    let suites = run_mix_suite(
        &cfg,
        &mixes,
        &[PolicySpec::baseline(), PolicySpec::qbs()],
        None,
    );
    for (mix, v) in mixes
        .iter()
        .zip(suites[1].normalized_throughput(&suites[0]))
    {
        assert!(v > 0.93, "{}: QBS at {v}", mix.name);
    }
}

#[test]
fn victim_heavy_mix_ranks_policies_correctly() {
    // lib+sje is the paper's canonical CCF-vs-thrasher mix; at steady
    // state QBS ~ non-inclusive > baseline.
    let cfg = SimConfig::scaled_down()
        .warmup(250_000)
        .instructions(80_000);
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let base = MixRun::new(&cfg, &mix).run();
    let qbs = MixRun::new(&cfg, &mix).policy(TlaPolicy::qbs()).run();
    let ni = MixRun::new(&cfg, &mix)
        .inclusion(InclusionPolicy::NonInclusive)
        .run();
    assert!(base.inclusion_victims() > 0, "mix must create victims");
    assert_eq!(qbs.inclusion_victims(), 0);
    assert!(qbs.throughput() > base.throughput());
    assert!((qbs.throughput() - ni.throughput()).abs() / ni.throughput() < 0.05);
}

#[test]
fn homogeneous_ccf_mix_sees_no_effect() {
    let cfg = quick();
    let mix = [SpecApp::DealII, SpecApp::Povray]; // MIX_01
    let base = MixRun::new(&cfg, &mix).run();
    let qbs = MixRun::new(&cfg, &mix).policy(TlaPolicy::qbs()).run();
    assert_eq!(base.inclusion_victims(), 0);
    let delta = (qbs.throughput() / base.throughput() - 1.0).abs();
    assert!(delta < 0.01, "no-victim mix must be unaffected: {delta}");
}

#[test]
fn exclusive_beats_inclusive_on_capacity_bound_mix() {
    // Two LLC-fitting apps that together overflow the LLC: the exclusive
    // hierarchy's extra capacity must show.
    let cfg = SimConfig::scaled_down()
        .warmup(250_000)
        .instructions(80_000);
    let mix = [SpecApp::Bzip2, SpecApp::Calculix];
    let base = MixRun::new(&cfg, &mix).run();
    let excl = MixRun::new(&cfg, &mix)
        .inclusion(InclusionPolicy::Exclusive)
        .run();
    assert!(excl.llc_misses() < base.llc_misses());
}

#[test]
fn all_policy_specs_run_all_mixes() {
    // Smoke: every constructor x a few mixes completes and returns sane
    // numbers.
    let cfg = SimConfig::scaled_down().instructions(5_000);
    let mixes = &all_two_core_mixes()[..3];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
        PolicySpec::tlh_il1(),
        PolicySpec::tlh_dl1(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::tlh_l1_l2(),
        PolicySpec::tlh_l1_filtered(0.1),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::qbs_il1(),
        PolicySpec::qbs_dl1(),
        PolicySpec::qbs_l1(),
        PolicySpec::qbs_l2(),
        PolicySpec::qbs_limited(1),
        PolicySpec::qbs_invalidating(),
        PolicySpec::victim_cache_32(),
        PolicySpec::baseline().with_llc_replacement(Policy::Srrip),
        PolicySpec::on_non_inclusive(TlaPolicy::qbs()),
    ];
    let suites = run_mix_suite(&cfg, mixes, &specs, None);
    for suite in &suites {
        for run in &suite.runs {
            assert!(run.throughput() > 0.0, "{}", suite.spec.name);
            for t in &run.threads {
                assert!(t.ipc() > 0.0 && t.ipc() <= 4.0);
            }
        }
    }
}

#[test]
fn four_and_eight_core_mixes_run() {
    let cfg = SimConfig::scaled_down().instructions(8_000);
    for cores in [4usize, 8] {
        let mix = &random_mixes(cores, 1, 42)[0];
        let r = MixRun::new(&cfg, &mix.apps).policy(TlaPolicy::qbs()).run();
        assert_eq!(r.threads.len(), cores);
        assert!(r.throughput() > 0.0);
    }
}

#[test]
fn weighted_speedup_consistent_with_throughput_direction() {
    let cfg = quick();
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let alone: Vec<f64> = run_alone_many(&cfg, &mix).iter().map(|t| t.ipc()).collect();
    let base = MixRun::new(&cfg, &mix).run();
    let qbs = MixRun::new(&cfg, &mix).policy(TlaPolicy::qbs()).run();
    if qbs.throughput() > base.throughput() {
        assert!(qbs.weighted_speedup(&alone) >= base.weighted_speedup(&alone) * 0.99);
        assert!(qbs.hmean_fairness(&alone) >= base.hmean_fairness(&alone) * 0.99);
    }
}

#[test]
fn stats_helpers_round_trip() {
    // End-to-end: geomean of normalized series equals manual computation.
    let cfg = quick();
    let mixes = &table2_mixes()[..2];
    let suites = run_mix_suite(
        &cfg,
        mixes,
        &[PolicySpec::baseline(), PolicySpec::eci()],
        None,
    );
    let series = suites[1].normalized_throughput(&suites[0]);
    let manual: f64 = series.iter().map(|v| v.ln()).sum::<f64>() / series.len() as f64;
    let g = suites[1].geomean_throughput(&suites[0]).unwrap();
    assert!((g - manual.exp()).abs() < 1e-12);
    assert!(stats::geomean(series.into_iter()).is_some());
}
