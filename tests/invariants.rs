//! Property-based invariant tests over the full hierarchy and its
//! substrates, driven by proptest-generated access streams.

use proptest::prelude::*;
use tla::cache::{CacheConfig, Policy, SetAssocCache};
use tla::core::{CacheHierarchy, HierarchyConfig, InclusionPolicy, TlaPolicy, VictimCacheConfig};
use tla::types::{AccessKind, CoreId, DataSource, LineAddr};

/// A compact encoding of one access: (core, line, is_store).
type Access = (u8, u64, bool);

fn accesses(max_line: u64, len: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec((0u8..2, 0..max_line, any::<bool>()), 1..len)
}

fn tla_policy() -> impl Strategy<Value = TlaPolicy> {
    prop_oneof![
        Just(TlaPolicy::baseline()),
        Just(TlaPolicy::tlh_l1()),
        Just(TlaPolicy::tlh_l2()),
        Just(TlaPolicy::eci()),
        Just(TlaPolicy::qbs()),
        Just(TlaPolicy::qbs_limited(1)),
        Just(TlaPolicy::qbs_invalidating()),
    ]
}

fn drive(h: &mut CacheHierarchy, stream: &[Access]) {
    for &(core, line, store) in stream {
        let kind = if store { AccessKind::Store } else { AccessKind::Load };
        h.access(CoreId::new(core as usize), LineAddr::new(line), kind);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inclusion property holds after any access stream, under every
    /// TLA policy, with and without a victim cache.
    #[test]
    fn inclusion_invariant_holds(
        stream in accesses(64, 300),
        tla in tla_policy(),
        vc in any::<bool>(),
    ) {
        let mut cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        if vc {
            cfg = cfg.victim_cache(VictimCacheConfig { entries: 4 });
        }
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        prop_assert_eq!(h.find_inclusion_violation(), None);
    }

    /// The exclusion property (no line both LLC- and core-resident) holds
    /// after any access stream.
    #[test]
    fn exclusion_invariant_holds(stream in accesses(64, 300)) {
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(2)
            .inclusion_policy(InclusionPolicy::Exclusive);
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        prop_assert_eq!(h.find_exclusion_violation(), None);
    }

    /// Immediately after any access, re-accessing the same line from the
    /// same core hits the L1 (coherence of the fill path).
    #[test]
    fn reaccess_is_always_an_l1_hit(
        stream in accesses(48, 200),
        tla in tla_policy(),
    ) {
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut h = CacheHierarchy::new(&cfg);
        for &(core, line, store) in &stream {
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let core = CoreId::new(core as usize);
            h.access(core, LineAddr::new(line), kind);
            let again = h.access(core, LineAddr::new(line), AccessKind::Load);
            prop_assert_eq!(again, DataSource::L1);
        }
    }

    /// Per-core counters are internally consistent: misses never exceed
    /// accesses at any level, and deeper levels see at most the misses of
    /// the level above.
    #[test]
    fn stats_are_consistent(
        stream in accesses(96, 400),
        tla in tla_policy(),
    ) {
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        for c in 0..2 {
            let s = h.per_core_stats(CoreId::new(c));
            prop_assert!(s.l1i_misses <= s.l1i_accesses);
            prop_assert!(s.l1d_misses <= s.l1d_accesses);
            prop_assert!(s.l2_misses <= s.l2_accesses);
            prop_assert!(s.llc_misses <= s.llc_accesses);
            prop_assert_eq!(s.l2_accesses, s.l1_misses());
            prop_assert_eq!(s.llc_accesses, s.l2_misses);
            prop_assert!(s.memory_accesses <= s.llc_misses);
        }
    }

    /// The hierarchy is deterministic: identical configurations and
    /// streams produce identical statistics.
    #[test]
    fn hierarchy_is_deterministic(
        stream in accesses(64, 200),
        tla in tla_policy(),
    ) {
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut a = CacheHierarchy::new(&cfg);
        let mut b = CacheHierarchy::new(&cfg);
        drive(&mut a, &stream);
        drive(&mut b, &stream);
        for c in 0..2 {
            prop_assert_eq!(a.per_core_stats(CoreId::new(c)), b.per_core_stats(CoreId::new(c)));
        }
        prop_assert_eq!(a.global_stats(), b.global_stats());
    }

    /// QBS only ever creates an inclusion victim by exhausting its query
    /// budget (§III-C: "when the maximum is reached, the next victim line
    /// is selected for replacement"). In this toy geometry every LLC way
    /// can be core-resident, so the fallback does fire — but victims
    /// without a recorded limit event would be a bug.
    #[test]
    fn qbs_victims_only_at_query_limit(stream in accesses(64, 400)) {
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(TlaPolicy::qbs());
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        let victims: u64 = (0..2)
            .map(|c| h.per_core_stats(CoreId::new(c)).inclusion_victims())
            .sum();
        if victims > 0 {
            prop_assert!(
                h.global_stats().qbs_limit_hits > 0,
                "victims without a query-limit event"
            );
        }
    }

    /// With a query budget covering the whole set, QBS creates no
    /// inclusion victims as long as the LLC set is wide enough to hold
    /// every core-resident line mapping to it (here: one core, 4-way LLC,
    /// at most 2+2+2 core-resident lines but only 2 L1D + 2 L2 distinct
    /// data lines per set in the worst case).
    #[test]
    fn qbs_protects_when_budget_allows(stream in accesses(16, 300)) {
        let cfg = HierarchyConfig::tiny_fig3().tla(TlaPolicy::qbs());
        let mut h = CacheHierarchy::new(&cfg);
        for &(_, line, store) in &stream {
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            h.access(CoreId::new(0), LineAddr::new(line), kind);
        }
        let s = h.per_core_stats(CoreId::new(0));
        if h.global_stats().qbs_limit_hits == 0 {
            prop_assert_eq!(s.inclusion_victims(), 0);
        }
    }

    /// Cache occupancy never exceeds capacity and probe/touch agree.
    #[test]
    fn cache_occupancy_bounded(
        lines in prop::collection::vec(0u64..256, 1..400),
        policy in prop_oneof![
            Just(Policy::Lru), Just(Policy::Nru), Just(Policy::Fifo),
            Just(Policy::Random), Just(Policy::Plru), Just(Policy::Srrip),
            Just(Policy::Brrip), Just(Policy::Drrip),
        ],
    ) {
        let cfg = CacheConfig::with_sets("prop", 4, 4, policy).unwrap();
        let mut cache = SetAssocCache::new(cfg);
        for &l in &lines {
            let line = LineAddr::new(l);
            let probed = cache.probe(line);
            let touched = cache.touch(line);
            prop_assert_eq!(probed, touched);
            if !touched {
                cache.fill(line, false);
            }
            prop_assert!(cache.occupancy() <= 16);
            prop_assert!(cache.probe(line));
        }
        let s = cache.stats();
        prop_assert_eq!(s.demand_accesses, lines.len() as u64);
        prop_assert_eq!(s.fills, s.demand_misses);
    }

    /// The LRU policy implements stack inclusion: a hit under a smaller
    /// LRU cache implies a hit under a bigger one (same set count).
    #[test]
    fn lru_is_a_stack_algorithm(lines in prop::collection::vec(0u64..64, 1..300)) {
        let mut small = SetAssocCache::new(
            CacheConfig::with_sets("small", 2, 2, Policy::Lru).unwrap(),
        );
        let mut big = SetAssocCache::new(
            CacheConfig::with_sets("big", 2, 4, Policy::Lru).unwrap(),
        );
        for &l in &lines {
            let line = LineAddr::new(l);
            let hit_small = small.touch(line);
            let hit_big = big.touch(line);
            prop_assert!(!hit_small || hit_big, "stack property violated at {l}");
            if !hit_small {
                small.fill(line, false);
            }
            if !hit_big {
                big.fill(line, false);
            }
        }
    }
}
