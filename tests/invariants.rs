//! Randomized invariant tests over the full hierarchy and its
//! substrates, driven by deterministic seeded access streams.
//!
//! Each test replays `CASES` independent streams from fixed seeds, so a
//! failure names the exact case to replay — the offline stand-in for the
//! proptest strategies this suite originally used.

use tla::cache::{CacheConfig, Policy, SetAssocCache};
use tla::core::{CacheHierarchy, HierarchyConfig, InclusionPolicy, TlaPolicy, VictimCacheConfig};
use tla::rng::SmallRng;
use tla::types::{AccessKind, CoreId, DataSource, LineAddr};

const CASES: u64 = 64;

/// A compact encoding of one access: (core, line, is_store).
type Access = (u8, u64, bool);

fn accesses(rng: &mut SmallRng, max_line: u64, max_len: usize) -> Vec<Access> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0u32..2) as u8,
                rng.gen_range(0..max_line),
                rng.gen_bool(0.5),
            )
        })
        .collect()
}

fn tla_policy(rng: &mut SmallRng) -> TlaPolicy {
    let all = [
        TlaPolicy::baseline(),
        TlaPolicy::tlh_l1(),
        TlaPolicy::tlh_l2(),
        TlaPolicy::eci(),
        TlaPolicy::qbs(),
        TlaPolicy::qbs_limited(1),
        TlaPolicy::qbs_invalidating(),
    ];
    all[rng.gen_range(0..all.len())]
}

fn drive(h: &mut CacheHierarchy, stream: &[Access]) {
    for &(core, line, store) in stream {
        let kind = if store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        h.access(CoreId::new(core as usize), LineAddr::new(line), kind);
    }
}

/// The inclusion property holds after any access stream, under every
/// TLA policy, with and without a victim cache.
#[test]
fn inclusion_invariant_holds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_0000 + case);
        let stream = accesses(&mut rng, 64, 300);
        let tla = tla_policy(&mut rng);
        let mut cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        if rng.gen_bool(0.5) {
            cfg = cfg.victim_cache(VictimCacheConfig { entries: 4 });
        }
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        assert_eq!(h.find_inclusion_violation(), None, "case {case}");
    }
}

/// The exclusion property (no line both LLC- and core-resident) holds
/// after any access stream.
#[test]
fn exclusion_invariant_holds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_1000 + case);
        let stream = accesses(&mut rng, 64, 300);
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(2)
            .inclusion_policy(InclusionPolicy::Exclusive);
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        assert_eq!(h.find_exclusion_violation(), None, "case {case}");
    }
}

/// Immediately after any access, re-accessing the same line from the
/// same core hits the L1 (coherence of the fill path).
#[test]
fn reaccess_is_always_an_l1_hit() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_2000 + case);
        let stream = accesses(&mut rng, 48, 200);
        let tla = tla_policy(&mut rng);
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut h = CacheHierarchy::new(&cfg);
        for &(core, line, store) in &stream {
            let kind = if store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let core = CoreId::new(core as usize);
            h.access(core, LineAddr::new(line), kind);
            let again = h.access(core, LineAddr::new(line), AccessKind::Load);
            assert_eq!(again, DataSource::L1, "case {case}");
        }
    }
}

/// Per-core counters are internally consistent: misses never exceed
/// accesses at any level, and deeper levels see at most the misses of
/// the level above.
#[test]
fn stats_are_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_3000 + case);
        let stream = accesses(&mut rng, 96, 400);
        let tla = tla_policy(&mut rng);
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        for c in 0..2 {
            let s = h.per_core_stats(CoreId::new(c));
            assert!(s.l1i_misses <= s.l1i_accesses, "case {case}");
            assert!(s.l1d_misses <= s.l1d_accesses, "case {case}");
            assert!(s.l2_misses <= s.l2_accesses, "case {case}");
            assert!(s.llc_misses <= s.llc_accesses, "case {case}");
            assert_eq!(s.l2_accesses, s.l1_misses(), "case {case}");
            assert_eq!(s.llc_accesses, s.l2_misses, "case {case}");
            assert!(s.memory_accesses <= s.llc_misses, "case {case}");
        }
    }
}

/// The hierarchy is deterministic: identical configurations and
/// streams produce identical statistics.
#[test]
fn hierarchy_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_4000 + case);
        let stream = accesses(&mut rng, 64, 200);
        let tla = tla_policy(&mut rng);
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
        let mut a = CacheHierarchy::new(&cfg);
        let mut b = CacheHierarchy::new(&cfg);
        drive(&mut a, &stream);
        drive(&mut b, &stream);
        for c in 0..2 {
            assert_eq!(
                a.per_core_stats(CoreId::new(c)),
                b.per_core_stats(CoreId::new(c)),
                "case {case}"
            );
        }
        assert_eq!(a.global_stats(), b.global_stats(), "case {case}");
    }
}

/// QBS only ever creates an inclusion victim by exhausting its query
/// budget (§III-C: "when the maximum is reached, the next victim line
/// is selected for replacement"). In this toy geometry every LLC way
/// can be core-resident, so the fallback does fire — but victims
/// without a recorded limit event would be a bug.
#[test]
fn qbs_victims_only_at_query_limit() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_5000 + case);
        let stream = accesses(&mut rng, 64, 400);
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(TlaPolicy::qbs());
        let mut h = CacheHierarchy::new(&cfg);
        drive(&mut h, &stream);
        let victims: u64 = (0..2)
            .map(|c| h.per_core_stats(CoreId::new(c)).inclusion_victims())
            .sum();
        if victims > 0 {
            assert!(
                h.global_stats().qbs_limit_hits > 0,
                "case {case}: victims without a query-limit event"
            );
        }
    }
}

/// With a query budget covering the whole set, QBS creates no
/// inclusion victims as long as the LLC set is wide enough to hold
/// every core-resident line mapping to it (here: one core, 4-way LLC,
/// at most 2+2+2 core-resident lines but only 2 L1D + 2 L2 distinct
/// data lines per set in the worst case).
#[test]
fn qbs_protects_when_budget_allows() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_6000 + case);
        let stream = accesses(&mut rng, 16, 300);
        let cfg = HierarchyConfig::tiny_fig3().tla(TlaPolicy::qbs());
        let mut h = CacheHierarchy::new(&cfg);
        for &(_, line, store) in &stream {
            let kind = if store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            h.access(CoreId::new(0), LineAddr::new(line), kind);
        }
        let s = h.per_core_stats(CoreId::new(0));
        if h.global_stats().qbs_limit_hits == 0 {
            assert_eq!(s.inclusion_victims(), 0, "case {case}");
        }
    }
}

/// Cache occupancy never exceeds capacity and probe/touch agree.
#[test]
fn cache_occupancy_bounded() {
    const POLICIES: [Policy; 8] = [
        Policy::Lru,
        Policy::Nru,
        Policy::Fifo,
        Policy::Random,
        Policy::Plru,
        Policy::Srrip,
        Policy::Brrip,
        Policy::Drrip,
    ];
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_7000 + case);
        let len = rng.gen_range(1usize..400);
        let lines: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..256)).collect();
        let policy = POLICIES[rng.gen_range(0..POLICIES.len())];
        let cfg = CacheConfig::with_sets("rand", 4, 4, policy).unwrap();
        let mut cache = SetAssocCache::new(cfg);
        for &l in &lines {
            let line = LineAddr::new(l);
            let probed = cache.probe(line);
            let touched = cache.touch(line);
            assert_eq!(probed, touched, "case {case}");
            if !touched {
                cache.fill(line, false);
            }
            assert!(cache.occupancy() <= 16, "case {case}");
            assert!(cache.probe(line), "case {case}");
        }
        let s = cache.stats();
        assert_eq!(s.demand_accesses, lines.len() as u64, "case {case}");
        assert_eq!(s.fills, s.demand_misses, "case {case}");
    }
}

/// The LRU policy implements stack inclusion: a hit under a smaller
/// LRU cache implies a hit under a bigger one (same set count).
#[test]
fn lru_is_a_stack_algorithm() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1A_8000 + case);
        let len = rng.gen_range(1usize..300);
        let lines: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..64)).collect();
        let mut small =
            SetAssocCache::new(CacheConfig::with_sets("small", 2, 2, Policy::Lru).unwrap());
        let mut big = SetAssocCache::new(CacheConfig::with_sets("big", 2, 4, Policy::Lru).unwrap());
        for &l in &lines {
            let line = LineAddr::new(l);
            let hit_small = small.touch(line);
            let hit_big = big.touch(line);
            assert!(
                !hit_small || hit_big,
                "case {case}: stack property violated at {l}"
            );
            if !hit_small {
                small.fill(line, false);
            }
            if !hit_big {
                big.fill(line, false);
            }
        }
    }
}
