//! Golden-output pin for the simulation core.
//!
//! Renders the exact JSON document `tla-cli compare --json` writes for a
//! fixed seed matrix and demands byte equality with the committed golden
//! file. The matrix spans every inclusion mode and TLA policy so any
//! behavioural drift in the hot path — intended or not — trips this test.
//! It was blessed immediately after the PR 3 correctness fixes and pins
//! the struct-of-arrays / scratch-buffer rewrite as simulation-invariant.
//!
//! To re-bless after an *intentional* behaviour change:
//! `TLA_BLESS=1 cargo test --test golden`.

use std::path::Path;

use tla::sim::{run_policy_reports, PolicySpec, SimConfig};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

#[test]
fn compare_json_matches_committed_golden() {
    let cfg = SimConfig::scaled_down().instructions(25_000).seed(42);
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    let results = run_policy_reports(&cfg, &mix, &specs, None, Some(5_000));
    let doc = JsonValue::array(
        results
            .iter()
            .map(|(_, rep)| rep.as_ref().expect("window requested").to_json()),
    );
    let rendered = doc.to_pretty();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_pr3.json");
    if std::env::var_os("TLA_BLESS").is_some() {
        std::fs::write(&path, rendered.as_bytes()).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run TLA_BLESS=1 cargo test --test golden");
    assert_eq!(
        rendered, golden,
        "compare --json output drifted from the committed golden; if the \
         change is intentional, re-bless with TLA_BLESS=1"
    );
}
