//! The trivial-io differential pin again, with SIMD dispatch disabled.
//!
//! Same contract as `io_differential.rs` — zero I/O agents plus an
//! unlimited injection-way budget must leave `compare --json` output
//! byte-identical to the pre-io golden, on both engines — but run under
//! the portable probe kernel. A separate process is required because
//! kernel selection is per-process sticky (see `golden_scalar.rs`).

use std::path::Path;

use tla::io::IoMixConfig;
use tla::sim::{EngineMode, MixRun, PolicySpec, SimConfig};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

fn rendered_with_trivial_io(mode: EngineMode) -> String {
    let cfg = SimConfig::scaled_down().instructions(25_000).seed(42);
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    let io = IoMixConfig::none().inject_ways(16);
    let doc = JsonValue::array(specs.iter().map(|spec| {
        let (_, report) = MixRun::new(&cfg, &mix)
            .spec(spec)
            .engine_mode(mode)
            .io(io.clone())
            .run_report(Some(5_000));
        report.to_json()
    }));
    doc.to_pretty()
}

#[test]
fn trivial_io_scalar_kernel_matches_pre_io_golden() {
    // Before any cache is built: kernel selection is per-process sticky.
    std::env::set_var("TLA_FORCE_SCALAR", "1");
    assert_eq!(
        tla::cache::kernel_name(),
        "scalar4",
        "TLA_FORCE_SCALAR must pin the portable kernel"
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_pr3.json");
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run TLA_BLESS=1 cargo test --test golden");
    assert_eq!(
        rendered_with_trivial_io(EngineMode::Batched),
        golden,
        "scalar kernel, batched engine: trivial --io drifted from the golden"
    );
    assert_eq!(
        rendered_with_trivial_io(EngineMode::Serial),
        golden,
        "scalar kernel, serial engine: trivial --io drifted from the golden"
    );
}
