//! Golden pin of the Belady MIN oracle.
//!
//! The acceptance bar for the analytics layer: on a recorded trace the
//! two-pass oracle must agree exactly with the O(n^2) brute-force
//! reference, and its hit count is pinned as a literal so any change to
//! the replay (set mapping, tie-breaking, warm-cut semantics) fails
//! loudly instead of silently shifting every `gap_to_opt` column.

use tla_sim::{belady, belady_bruteforce, mix_reference_stream, optimal_llc, SimConfig};
use tla_types::LineAddr;
use tla_workloads::{RecordedTrace, SpecApp, TraceSource};

/// The LLC-bound reference stream of one recorded thread: instruction
/// fetches deduplicated against the previous instruction's code line
/// (exactly like the simulator's fetch path), then the data reference.
fn reference_stream(trace: &RecordedTrace) -> Vec<LineAddr> {
    let mut refs = Vec::new();
    let mut last_code = None;
    for instr in trace.iter() {
        if last_code != Some(instr.code_line) {
            last_code = Some(instr.code_line);
            refs.push(instr.code_line);
        }
        if let Some(m) = instr.mem {
            refs.push(m.addr);
        }
    }
    refs
}

#[test]
fn min_oracle_hit_count_is_pinned_against_bruteforce() {
    // mcf at scale 64, instance 0, seed 1: pointer chasing with enough
    // reuse that MIN has real eviction decisions to make.
    let mut live = SpecApp::Mcf.trace(64, 0, 1);
    let trace = RecordedTrace::record(&mut live, 4_000);
    let refs = reference_stream(&trace);

    for (sets, ways, warm) in [(64usize, 4usize, 0usize), (16, 8, 0), (64, 4, 1_000)] {
        let fast = belady(&refs, warm, sets, ways);
        let slow = belady_bruteforce(&refs, warm, sets, ways);
        assert_eq!(
            fast, slow,
            "two-pass vs brute-force diverge at sets={sets} ways={ways} warm={warm}"
        );
        assert_eq!(fast.accesses, (refs.len() - warm) as u64);
        assert_eq!(fast.hits + fast.misses, fast.accesses);
    }

    // Golden pin: the exact MIN hit count on this recorded trace. If this
    // moves, the oracle's decisions moved — re-derive, don't re-bless.
    let pinned = belady(&refs, 0, 64, 4);
    assert_eq!(
        (pinned.accesses, pinned.hits, pinned.misses),
        (2010, 1912, 98)
    );
}

#[test]
fn replaying_the_recording_matches_the_live_stream() {
    // The recorded second pass sees the same instructions replay does.
    let mut live = SpecApp::Libquantum.trace(64, 0, 1);
    let mut trace = RecordedTrace::record(&mut live, 500);
    let via_iter: Vec<_> = trace.iter().copied().collect();
    let via_replay: Vec<_> = (0..500).map(|_| trace.next_instruction()).collect();
    assert_eq!(via_iter, via_replay);
}

#[test]
fn mix_oracle_is_pinned() {
    // The full analyze-path oracle: interleaved two-core stream replayed
    // against the scaled-down LLC geometry.
    let cfg = SimConfig::scaled_down().warmup(2_000).instructions(8_000);
    let apps = [SpecApp::Mcf, SpecApp::Libquantum];
    let (refs, warm_len) = mix_reference_stream(&cfg, &apps);
    assert!(warm_len > 0 && warm_len < refs.len());
    let opt = optimal_llc(&cfg, &apps, None);
    assert_eq!((opt.accesses, opt.hits, opt.misses), (8153, 7668, 485));
    // Replaying the same stream by hand agrees with the packaged helper.
    let hcfg = tla_core::HierarchyConfig::scaled(apps.len(), cfg.scale() as usize);
    let direct = belady(&refs, warm_len, hcfg.llc().sets(), hcfg.llc().ways());
    assert_eq!(
        (direct.accesses, direct.hits, direct.misses),
        (8153, 7668, 485)
    );
}
