//! Engine equivalence matrix: the serial reference loop, the batched
//! run-extraction engine and the parallel epoch pipeline (at every
//! tested `engine_jobs` count) produce byte-identical artifacts —
//! `compare --json`, `analyze --json`, io-mix reports, and checkpoint
//! bytes, including save→resume across engine modes.
//!
//! The parallel engine only moves trace *generation* onto worker
//! threads and chops commit time into epochs; commits still always pick
//! the globally minimal `(clock, core)` heap entry, so nothing
//! observable may change by a byte (DESIGN §4l). CI reruns this suite
//! under `TLA_FORCE_SCALAR=1`, which pins the portable probe kernels —
//! the equivalence must hold on either dispatch path.

use tla::io::{IoAgentSpec, IoMixConfig};
use tla::sim::{optimal_llc, EngineMode, MixRun, PolicySpec, SimConfig};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

/// Worker counts the parallel engine is pinned against. The serial and
/// batched engines never touch the worker pool, so they are rendered
/// once each; parallel must match them at every count.
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn quick() -> SimConfig {
    SimConfig::scaled_down().instructions(10_000)
}

fn mix() -> [SpecApp; 2] {
    [SpecApp::Libquantum, SpecApp::Sjeng]
}

/// `(mode, engine_jobs)` pairs spanning the whole matrix.
fn matrix() -> Vec<(EngineMode, usize)> {
    let mut m = vec![(EngineMode::Serial, 1), (EngineMode::Batched, 1)];
    m.extend(JOB_COUNTS.map(|jobs| (EngineMode::Parallel, jobs)));
    m
}

/// Renders the exact `tla-cli compare --json` artifact with every run
/// pinned to the given engine and worker count.
fn render_compare(mode: EngineMode, jobs: usize) -> String {
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
    ];
    let cfg = quick().engine_jobs(jobs);
    let reports: Vec<JsonValue> = specs
        .iter()
        .map(|spec| {
            let (_, report) = MixRun::new(&cfg, &mix())
                .spec(spec)
                .engine_mode(mode)
                .run_report(Some(2_500));
            report.to_json()
        })
        .collect();
    JsonValue::array(reports).to_pretty()
}

#[test]
fn compare_json_is_byte_identical_across_engines_and_job_counts() {
    let reference = render_compare(EngineMode::Serial, 1);
    assert!(!reference.is_empty());
    for (mode, jobs) in matrix() {
        assert_eq!(
            render_compare(mode, jobs),
            reference,
            "compare --json diverged under {} engine with {jobs} jobs",
            mode.label()
        );
    }
}

/// Renders the `tla-cli analyze --json` artifact (reports plus the
/// oracle-derived fields) under one engine/job-count pin. The policy
/// fan-out helper resolves the engine from `TLA_ENGINE` per run, so the
/// suite is rebuilt per report here with an explicit pin instead.
fn render_analyze(mode: EngineMode, jobs: usize) -> String {
    let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
    let cfg = quick().engine_jobs(jobs);
    let opt = optimal_llc(&cfg, &mix(), None);
    let docs: Vec<JsonValue> = specs
        .iter()
        .map(|spec| {
            let (r, mut report) = MixRun::new(&cfg, &mix())
                .spec(spec)
                .engine_mode(mode)
                .run_report_analyzed(Some(2_500), 4);
            report.opt_misses = Some(opt.misses);
            report.gap_to_opt =
                Some((r.llc_misses() as f64 - opt.misses as f64) / (opt.misses.max(1) as f64));
            report.to_json()
        })
        .collect();
    JsonValue::array(docs).to_pretty()
}

#[test]
fn analyze_json_is_byte_identical_across_engines_and_job_counts() {
    let reference = render_analyze(EngineMode::Serial, 1);
    assert!(reference.contains("opt_misses"));
    assert!(reference.contains("reuse"));
    for (mode, jobs) in matrix() {
        assert_eq!(
            render_analyze(mode, jobs),
            reference,
            "analyze --json diverged under {} engine with {jobs} jobs",
            mode.label()
        );
    }
}

/// Renders an `io-sweep`-style report: a device mix (ring-buffer NIC +
/// leaky DMA, way-limited) under two policies, with the per-agent
/// breakdown that `io-sweep --json` carries.
fn render_io(mode: EngineMode, jobs: usize) -> String {
    let io = IoMixConfig::none()
        .agent(IoAgentSpec::nic().period(3).lines(256))
        .agent(IoAgentSpec::dma().period(5))
        .inject_ways(2);
    let cfg = quick().engine_jobs(jobs);
    let reports: Vec<JsonValue> = [PolicySpec::baseline(), PolicySpec::tlh_l1()]
        .iter()
        .map(|spec| {
            let (_, report) = MixRun::new(&cfg, &mix())
                .spec(spec)
                .io(io.clone())
                .engine_mode(mode)
                .run_report(Some(2_500));
            report.to_json()
        })
        .collect();
    JsonValue::array(reports).to_pretty()
}

#[test]
fn io_sweep_json_is_byte_identical_across_engines_and_job_counts() {
    let reference = render_io(EngineMode::Serial, 1);
    assert!(
        reference.contains("\"io\""),
        "io report key missing from the reference artifact"
    );
    for (mode, jobs) in matrix() {
        assert_eq!(
            render_io(mode, jobs),
            reference,
            "io report diverged under {} engine with {jobs} jobs",
            mode.label()
        );
    }
}

#[test]
fn checkpoints_save_and_resume_across_engine_modes() {
    // Warm images must carry no trace of the engine that wrote them, and
    // any engine must finish any engine's image identically.
    let cfg = SimConfig::scaled_down().warmup(15_000).instructions(10_000);
    let mix = [SpecApp::Sjeng, SpecApp::Mcf];
    let reference = MixRun::new(&cfg, &mix)
        .engine_mode(EngineMode::Serial)
        .warm_checkpoint_instrumented(Some(5_000));
    let straight = {
        let (_, report) = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Serial)
            .spec(&PolicySpec::qbs())
            .run_report(Some(5_000));
        report.to_json_string()
    };
    for (mode, jobs) in matrix() {
        let cfg = cfg.clone().engine_jobs(jobs);
        let ck = MixRun::new(&cfg, &mix)
            .engine_mode(mode)
            .warm_checkpoint_instrumented(Some(5_000));
        assert_eq!(
            ck.as_bytes(),
            reference.as_bytes(),
            "{} engine with {jobs} jobs leaked into checkpoint bytes",
            mode.label()
        );
        // Resume the serially-written image under this engine (and this
        // engine's image is identical anyway): the finished report must
        // match the straight-through run byte-for-byte.
        let (_, report) = MixRun::new(&cfg, &mix)
            .engine_mode(mode)
            .spec(&PolicySpec::qbs())
            .resume_report(&reference, Some(5_000))
            .unwrap();
        assert_eq!(
            report.to_json_string(),
            straight,
            "resume under {} engine with {jobs} jobs diverged",
            mode.label()
        );
    }
}
