//! The paper's Figure 3 worked example, asserted step by step.
//!
//! Reference pattern `a, b, a, c, a, d, a, e, a, f, a` on a 2-entry L1
//! over a 4-entry inclusive LLC. The paper's claims:
//!
//! * baseline: `a` becomes an inclusion victim and later misses to memory
//!   despite its high temporal locality;
//! * TLH: hints keep `a` MRU in the LLC, no inclusion victims;
//! * ECI: `a` is invalidated early but rescued by an LLC hit on the next
//!   reference, deriving its temporal locality;
//! * QBS: the query finds `a` resident and refuses to evict it;
//! * non-inclusive: `a` is never back-invalidated at all.

use tla::core::{CacheHierarchy, HierarchyConfig, InclusionPolicy, TlaPolicy};
use tla::types::{AccessKind, CoreId, DataSource, LineAddr};

const PATTERN: [u64; 11] = [1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1];
const A: u64 = 1;

fn run(cfg: HierarchyConfig) -> (CacheHierarchy, Vec<DataSource>) {
    let mut h = CacheHierarchy::new(&cfg);
    let sources = PATTERN
        .iter()
        .map(|&x| h.access(CoreId::new(0), LineAddr::new(x), AccessKind::Load))
        .collect();
    (h, sources)
}

/// Data sources of the references to `a` only.
fn a_sources(sources: &[DataSource]) -> Vec<DataSource> {
    PATTERN
        .iter()
        .zip(sources)
        .filter(|(&x, _)| x == A)
        .map(|(_, &s)| s)
        .collect()
}

#[test]
fn baseline_victimizes_the_hot_line() {
    let (h, sources) = run(HierarchyConfig::tiny_fig3());
    let a = a_sources(&sources);
    // First touch is a cold memory miss; at least one *later* reference to
    // `a` goes back to memory — the inclusion-victim refetch.
    assert_eq!(a[0], DataSource::Memory);
    assert!(
        a[1..].contains(&DataSource::Memory),
        "hot line must be refetched from memory: {a:?}"
    );
    assert!(h.per_core_stats(CoreId::new(0)).inclusion_victims_l1 >= 1);
    assert!(h.global_stats().back_invalidates >= 1);
}

#[test]
fn tlh_preserves_the_hot_line() {
    let (h, sources) = run(HierarchyConfig::tiny_fig3().tla(TlaPolicy::tlh_l1()));
    let a = a_sources(&sources);
    assert!(
        a[1..].iter().all(|&s| s == DataSource::L1),
        "with TLH every re-reference to 'a' is an L1 hit: {a:?}"
    );
    assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims(), 0);
    assert!(h.global_stats().tlh_hints > 0);
}

#[test]
fn eci_rescues_via_llc_hit() {
    let (h, sources) = run(HierarchyConfig::tiny_fig3().tla(TlaPolicy::eci()));
    let a = a_sources(&sources);
    // The early invalidation converts some L1 hits on 'a' into LLC hits
    // (the Fig. 3c rescue), but never into memory misses.
    assert!(
        a[1..].contains(&DataSource::Llc),
        "ECI must rescue 'a' at the LLC: {a:?}"
    );
    assert!(
        a[1..].iter().all(|&s| s != DataSource::Memory),
        "ECI must avoid memory refetches of 'a': {a:?}"
    );
    let g = h.global_stats();
    assert!(g.eci_invalidates > 0);
    assert!(g.eci_rescues > 0);
}

#[test]
fn qbs_refuses_to_evict_resident_lines() {
    let (h, sources) = run(HierarchyConfig::tiny_fig3().tla(TlaPolicy::qbs()));
    let a = a_sources(&sources);
    assert!(
        a[1..].iter().all(|&s| s == DataSource::L1),
        "with QBS every re-reference to 'a' is an L1 hit: {a:?}"
    );
    let g = h.global_stats();
    assert!(g.qbs_queries > 0);
    assert!(g.qbs_rejections > 0, "the query for 'a' must be rejected");
    assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims(), 0);
}

#[test]
fn non_inclusive_matches_qbs_here() {
    let (h, sources) =
        run(HierarchyConfig::tiny_fig3().inclusion_policy(InclusionPolicy::NonInclusive));
    let a = a_sources(&sources);
    assert!(a[1..].iter().all(|&s| s == DataSource::L1));
    assert_eq!(h.global_stats().back_invalidates, 0);
}

#[test]
fn policies_agree_on_memory_traffic_order() {
    // Memory references: baseline > TLH = QBS = non-inclusive; ECI in
    // between (it may cost LLC hits but not memory misses here).
    let mem_refs = |cfg: HierarchyConfig| {
        let (_, s) = run(cfg);
        s.iter().filter(|&&x| x == DataSource::Memory).count()
    };
    let tiny = HierarchyConfig::tiny_fig3;
    let base = mem_refs(tiny());
    let tlh = mem_refs(tiny().tla(TlaPolicy::tlh_l1()));
    let eci = mem_refs(tiny().tla(TlaPolicy::eci()));
    let qbs = mem_refs(tiny().tla(TlaPolicy::qbs()));
    let ni = mem_refs(tiny().inclusion_policy(InclusionPolicy::NonInclusive));
    assert!(base > tlh, "baseline {base} vs TLH {tlh}");
    assert_eq!(tlh, qbs);
    assert_eq!(qbs, ni);
    assert!(eci <= base);
}
