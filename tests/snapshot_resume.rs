//! Resume determinism: for every bench-matrix policy, a run resumed from
//! a warm checkpoint must be byte-identical (in report JSON) to the same
//! run executed straight through, and corrupt or mismatched checkpoints
//! must fail with descriptive errors — never silently diverge.

use tla::sim::{Checkpoint, MixRun, PolicySpec, SimConfig, SnapshotError};
use tla::workloads::SpecApp;

fn cfg() -> SimConfig {
    SimConfig::scaled_down()
        .warmup(100_000)
        .instructions(50_000)
        .seed(42)
}

const MIX: [SpecApp; 2] = [SpecApp::Libquantum, SpecApp::Sjeng];
const WINDOW: u64 = 25_000;

/// The four bench-matrix policies.
fn matrix_policies() -> [PolicySpec; 4] {
    [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
    ]
}

#[test]
fn resumed_reports_match_straight_runs_for_every_matrix_policy() {
    for spec in matrix_policies() {
        let (_, straight) = MixRun::new(&cfg(), &MIX)
            .spec(&spec)
            .run_report(Some(WINDOW));
        let checkpoint = MixRun::new(&cfg(), &MIX)
            .spec(&spec)
            .warm_checkpoint_instrumented(Some(WINDOW));
        let (_, resumed) = MixRun::new(&cfg(), &MIX)
            .spec(&spec)
            .resume_report(&checkpoint, Some(WINDOW))
            .unwrap();
        assert_eq!(
            resumed.to_json_string(),
            straight.to_json_string(),
            "{}: resumed report differs from straight-through report",
            spec.name
        );
    }
}

/// PR 5 acceptance: a 128-entry fully-associative victim cache — wider
/// than one bitmap word, scanned by the dispatched probe kernel —
/// constructs, runs, and snapshot-resumes byte-identically.
#[test]
fn wide_victim_cache_resumes_byte_identically() {
    let spec = PolicySpec::victim_cache(128);
    let (_, straight) = MixRun::new(&cfg(), &MIX)
        .spec(&spec)
        .run_report(Some(WINDOW));
    let checkpoint = MixRun::new(&cfg(), &MIX)
        .spec(&spec)
        .warm_checkpoint_instrumented(Some(WINDOW));
    // The image itself round-trips bytes through the serializer.
    let reloaded = Checkpoint::from_bytes(checkpoint.as_bytes().to_vec()).unwrap();
    assert_eq!(reloaded.as_bytes(), checkpoint.as_bytes());
    let (_, resumed) = MixRun::new(&cfg(), &MIX)
        .spec(&spec)
        .resume_report(&checkpoint, Some(WINDOW))
        .unwrap();
    assert_eq!(
        resumed.to_json_string(),
        straight.to_json_string(),
        "VC-128: resumed report differs from straight-through report"
    );
}

#[test]
fn checkpoint_survives_disk_round_trip() {
    let dir = std::env::temp_dir().join(format!("tla-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm.tlas");

    let checkpoint = MixRun::new(&cfg(), &MIX).warm_checkpoint();
    checkpoint.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.as_bytes(), checkpoint.as_bytes());

    // A second save of the loaded checkpoint is byte-identical on disk.
    let path2 = dir.join("warm2.tlas");
    loaded.save(&path2).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap()
    );

    let direct = MixRun::new(&cfg(), &MIX)
        .spec(&PolicySpec::eci())
        .resume(&checkpoint)
        .unwrap();
    let via_disk = MixRun::new(&cfg(), &MIX)
        .spec(&PolicySpec::eci())
        .resume(&loaded)
        .unwrap();
    assert_eq!(direct.global, via_disk.global);
    for (a, b) in direct.threads.iter().zip(&via_disk.threads) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cycles, b.cycles);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_fail_loudly() {
    let bytes = MixRun::new(&cfg(), &MIX)
        .warm_checkpoint()
        .as_bytes()
        .to_vec();

    // Bad magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        Checkpoint::from_bytes(bad_magic).unwrap_err(),
        SnapshotError::BadMagic
    ));

    // Unsupported version byte.
    let mut bad_version = bytes.clone();
    bad_version[4] = 0xFF;
    match Checkpoint::from_bytes(bad_version).unwrap_err() {
        SnapshotError::BadVersion { found, .. } => assert_eq!(found, 0xFF),
        other => panic!("expected BadVersion, got {other}"),
    }

    // Any flipped payload byte trips the checksum.
    for frac in [3, 2] {
        let mut corrupt = bytes.clone();
        let at = corrupt.len() / frac;
        corrupt[at] ^= 0x10;
        assert!(matches!(
            Checkpoint::from_bytes(corrupt).unwrap_err(),
            SnapshotError::BadChecksum
        ));
    }

    // Truncation anywhere fails (short header is Truncated; a longer cut
    // loses the checksum alignment).
    for cut in [2, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Checkpoint::from_bytes(bytes[..cut].to_vec()).is_err(),
            "cut at {cut} must be rejected"
        );
    }
    assert!(matches!(
        Checkpoint::from_bytes(bytes[..8].to_vec()).unwrap_err(),
        SnapshotError::Truncated
    ));

    // Errors render descriptively.
    let msg = SnapshotError::BadChecksum.to_string();
    assert!(msg.contains("checksum"), "{msg}");
}

#[test]
fn resume_pins_every_axis_but_the_policy() {
    let checkpoint = MixRun::new(&cfg(), &MIX).warm_checkpoint();

    // The policy axis is free: every matrix policy resumes fine.
    for spec in matrix_policies() {
        assert!(MixRun::new(&cfg(), &MIX)
            .spec(&spec)
            .resume(&checkpoint)
            .is_ok());
    }

    // Everything else is pinned with a Mismatch naming the axis.
    let expect = |err: SnapshotError, needle: &str| match err {
        SnapshotError::Mismatch(msg) => {
            assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
        }
        other => panic!("expected Mismatch for {needle}, got {other}"),
    };
    let other_mix = [SpecApp::Mcf, SpecApp::Sjeng];
    expect(
        MixRun::new(&cfg(), &other_mix)
            .resume(&checkpoint)
            .unwrap_err(),
        "mix",
    );
    expect(
        MixRun::new(&cfg().seed(7), &MIX)
            .resume(&checkpoint)
            .unwrap_err(),
        "seed",
    );
    expect(
        MixRun::new(&cfg().warmup(1), &MIX)
            .resume(&checkpoint)
            .unwrap_err(),
        "warm-up",
    );
    expect(
        MixRun::new(&cfg().instructions(1), &MIX)
            .resume(&checkpoint)
            .unwrap_err(),
        "instruction quota",
    );
    expect(
        MixRun::new(&cfg().prefetch(false), &MIX)
            .resume(&checkpoint)
            .unwrap_err(),
        "prefetch",
    );
}
