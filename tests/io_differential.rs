//! Differential pin: a disabled device-I/O config is invisible.
//!
//! With zero I/O agents and an unlimited injection-way budget, the whole
//! `tla-io` layer must be presence-gated out of the simulation: the JSON
//! `compare --json` writes is byte-identical to the pre-io golden
//! (`tests/golden/compare_pr3.json`), under both execution engines. The
//! scalar-kernel variant lives in `io_differential_scalar.rs` (kernel
//! selection is per-process sticky, so it needs its own process); the
//! two files together cover both engines x both probe kernels.

use std::path::Path;

use tla::io::IoMixConfig;
use tla::sim::{EngineMode, MixRun, PolicySpec, SimConfig};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

/// The golden matrix of `tests/golden.rs`, run with an explicit engine
/// and a *trivial* io config attached to every run: no agents, and an
/// injection-way budget that constrains nobody because there are no
/// injections and no partition.
pub fn rendered_with_trivial_io(mode: EngineMode) -> String {
    let cfg = SimConfig::scaled_down().instructions(25_000).seed(42);
    let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    let io = IoMixConfig::none().inject_ways(16);
    assert!(io.is_trivial(), "no agents + no partition = trivial");
    let doc = JsonValue::array(specs.iter().map(|spec| {
        let (_, report) = MixRun::new(&cfg, &mix)
            .spec(spec)
            .engine_mode(mode)
            .io(io.clone())
            .run_report(Some(5_000));
        report.to_json()
    }));
    doc.to_pretty()
}

/// Reads the golden file the pre-io pipeline blessed.
pub fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_pr3.json");
    std::fs::read_to_string(&path)
        .expect("golden file missing — run TLA_BLESS=1 cargo test --test golden")
}

#[test]
fn trivial_io_compare_json_is_byte_identical_to_pre_io_golden() {
    let golden = golden();
    assert_eq!(
        rendered_with_trivial_io(EngineMode::Batched),
        golden,
        "batched engine: a trivial --io config leaked into compare --json"
    );
    assert_eq!(
        rendered_with_trivial_io(EngineMode::Serial),
        golden,
        "serial engine: a trivial --io config leaked into compare --json"
    );
}
