//! Shard equivalence: the batched run-extraction engine, the serial
//! reference loop and every `--shard-jobs` worker count produce
//! byte-identical artifacts.
//!
//! The batched engine commits instructions in per-core runs and the
//! set-sharded oracle replays per-set queues (optionally across worker
//! threads); both restructurings are pure reorderings of independent
//! work, so the exact JSON `tla-cli compare`/`analyze` would write must
//! not change by a byte. CI reruns this suite under `TLA_FORCE_SCALAR=1`,
//! which pins the portable probe kernels — the equivalence must hold on
//! either dispatch path.

use tla::sim::{
    optimal_llc, run_policy_reports_analyzed, EngineMode, MixRun, PolicySpec, SimConfig,
};
use tla::telemetry::json::JsonValue;
use tla::workloads::SpecApp;

fn quick() -> SimConfig {
    SimConfig::scaled_down().instructions(10_000)
}

fn mix() -> [SpecApp; 2] {
    [SpecApp::Libquantum, SpecApp::Sjeng]
}

/// Renders the exact `tla-cli compare --json` artifact with every run
/// forced onto the given engine (`None` = the process default, whatever
/// `TLA_ENGINE` says).
fn render_compare(mode: Option<EngineMode>) -> String {
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
    ];
    let cfg = quick();
    let reports: Vec<JsonValue> = specs
        .iter()
        .map(|spec| {
            let mut run = MixRun::new(&cfg, &mix()).spec(spec);
            if let Some(m) = mode {
                run = run.engine_mode(m);
            }
            let (_, report) = run.run_report(Some(2_500));
            report.to_json()
        })
        .collect();
    JsonValue::array(reports).to_pretty()
}

#[test]
fn batched_and_serial_compare_json_are_byte_identical() {
    let batched = render_compare(Some(EngineMode::Batched));
    let serial = render_compare(Some(EngineMode::Serial));
    let default = render_compare(None);
    assert!(!batched.is_empty());
    assert_eq!(batched, serial, "engine mode leaked into compare --json");
    // Whichever engine the environment selects, the bytes are the same.
    assert_eq!(default, batched);
}

/// Renders the `tla-cli analyze --json` artifact (reports plus the
/// oracle-derived `opt_misses` / `gap_to_opt` / `inclusion_victim_rate`
/// fields) with the set-sharded oracle on `jobs` worker threads.
fn render_analyze(jobs: usize) -> String {
    let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
    let cfg = quick().shard_jobs(jobs);
    let opt = optimal_llc(&cfg, &mix(), None);
    let results = run_policy_reports_analyzed(&cfg, &mix(), &specs, None, Some(2_500), 4);
    let docs: Vec<JsonValue> = results
        .into_iter()
        .map(|(r, mut report)| {
            report.opt_misses = Some(opt.misses);
            report.gap_to_opt =
                Some((r.llc_misses() as f64 - opt.misses as f64) / (opt.misses.max(1) as f64));
            report.inclusion_victim_rate = Some(report.measured_victim_rate());
            report.to_json()
        })
        .collect();
    JsonValue::array(docs).to_pretty()
}

#[test]
fn analyze_json_is_byte_identical_for_every_shard_job_count() {
    let reference = render_analyze(1);
    assert!(reference.contains("opt_misses"));
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for jobs in [2, 7, cpus] {
        assert_eq!(
            render_analyze(jobs),
            reference,
            "analyze --json diverged at shard-jobs {jobs}"
        );
    }
}

#[test]
fn engine_and_sharding_compose() {
    // Belt and braces: a serial-engine run next to a batched-engine run of
    // the same mix, with the oracle sharded wide, all agree with the
    // all-defaults path.
    let cfg = quick();
    let serial = MixRun::new(&cfg, &mix())
        .engine_mode(EngineMode::Serial)
        .run();
    let batched = MixRun::new(&cfg, &mix())
        .engine_mode(EngineMode::Batched)
        .run();
    assert_eq!(serial.global, batched.global);
    let wide = optimal_llc(&cfg.clone().shard_jobs(0), &mix(), None);
    let narrow = optimal_llc(&cfg, &mix(), None);
    assert_eq!(wide, narrow);
}
